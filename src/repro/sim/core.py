"""Deterministic discrete-event simulation kernel.

This module implements the event loop at the heart of the DoCeph
reproduction: a SimPy-flavoured kernel built from scratch so that the
whole repository is dependency-free and bit-reproducible.

Design notes
------------
* **Determinism.**  The event heap orders entries by
  ``(time, priority, sequence)``.  The monotonically increasing sequence
  number breaks ties in insertion order, so two runs of the same model
  with the same seed produce identical traces.  An entry is the 4-tuple
  ``(time, priority, sequence, event)`` — small ints deliberately kept
  unpacked, because CPython compares them in one machine word whereas a
  ``priority << k | seq`` packed key goes multi-digit and slows every
  heap sift (measured ~5% on the fallback scenario).
* **One schedule fast path.**  Every event enters the heap through
  :func:`_schedule_at` — the single audited site that mints a sequence
  number and pushes.  Hot constructors call it directly; auditing (or
  batching) scheduling means auditing that one function.
* **Processes are generators.**  A process yields events; when a yielded
  event triggers, the process is resumed with the event's value (or the
  event's exception is thrown into it).
* **No wall-clock anywhere.**  ``env.now`` is the only notion of time.

The public surface mirrors the familiar SimPy API (``Environment``,
``Process``, ``Timeout``, ``Event``, ``AllOf``, ``AnyOf``) which keeps the
higher-level hardware models readable to anyone who has written DES
models before.
"""

from __future__ import annotations

import gc
from collections.abc import Generator
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional

from .exceptions import Interrupt, SimulationError, StopSimulation

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "register_fresh_env_hook",
]

#: Scheduling priority for urgent events (processed before normal events
#: scheduled at the same simulated time).  Used internally for process
#: initialisation and interrupts.
PRIORITY_URGENT = 0

#: Default scheduling priority.
PRIORITY_NORMAL = 1

# Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


def _schedule_at(
    env: "Environment", event: "Event", at: float, priority: int
) -> None:
    """THE schedule fast path: every event enters the heap here.

    Mints the tie-break sequence number and pushes the 4-tuple heap
    entry.  Peak-heap tracking deliberately does not live here: the heap
    only shrinks at pops, so the high-water mark is always attained at
    the top of a ``run()``/``step()`` iteration (plus the run-boundary
    checks in :meth:`Environment.run`), which spares every schedule a
    len+compare.
    """
    env._seq = seq = env._seq + 1
    heappush(env._queue, (at, priority, seq, event))

#: Callables invoked (in registration order) whenever a new
#: :class:`Environment` is constructed.  Modules with process-global
#: counters (e.g. the bufferlist blob-id mint) register a reset here so
#: every simulation starts from the same state regardless of what ran
#: earlier in the process — a fresh run and a run-after-run must be
#: bit-identical.
_fresh_env_hooks: list[Callable[[], None]] = []


def register_fresh_env_hook(hook: Callable[[], None]) -> None:
    """Run ``hook()`` at every :class:`Environment` construction."""
    _fresh_env_hooks.append(hook)


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` *triggers* it, scheduling it on the environment's queue;
    when the event loop pops it, the event is *processed*: all callbacks
    run and any waiting processes resume.

    Attributes
    ----------
    env:
        The owning :class:`Environment`.
    callbacks:
        List of callables invoked with the event when it is processed.
        ``None`` once the event has been processed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once :meth:`succeed`/:meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (only meaningful if triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value.  Raises if the event is not yet triggered."""
        if self._value is _PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception of a failed event, else ``None``."""
        if not self._ok and self._value is not _PENDING:
            return self._value  # type: ignore[return-value]
        return None

    @property
    def defused(self) -> bool:
        """Whether a failure has been marked as handled.

        A failed event whose exception is never retrieved would silently
        swallow the error; the kernel re-raises undefused failures at the
        top of the event loop.
        """
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        _schedule_at(env, self, env._now, PRIORITY_NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(
                f"fail() requires an exception, got {exception!r}"
            )
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if self._value is not _PENDING:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        # Timeouts are the highest-churn event type, so the generic
        # Event.__init__ chain is inlined: a timeout is born triggered,
        # and its fields are each written exactly once.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.env = env
        self.callbacks = []
        self._defused = False
        self._ok = True
        self._value = value
        self.delay = delay
        _schedule_at(
            env, self, env._now + delay if delay else env._now, PRIORITY_NORMAL
        )

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class _Sleep(Timeout):
    """Internal: a recyclable fire-and-forget timeout.

    Created through :meth:`Environment.sleep` only.  The event loop
    returns processed ``_Sleep`` instances to the environment's free
    list, so steady-state sleeps allocate nothing.  The contract: the
    caller yields the event immediately and never retains a reference
    (model code that stores, composes, or inspects a timeout must use
    :meth:`Environment.timeout` instead).
    """

    __slots__ = ()


class Initialize(Event):
    """Internal: first resumption of a freshly started process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        # Inlined Event.__init__ + env.schedule(self, priority=URGENT):
        # one Initialize per process makes this a hot constructor.
        self.env = env
        self.callbacks = [process._bound_resume]
        self._value = None
        self._ok = True
        self._defused = False
        _schedule_at(env, self, env._now, PRIORITY_URGENT)


class _Interruption(Event):
    """Internal: delivers an :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self.callbacks.append(self._deliver)  # type: ignore[union-attr]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.env.schedule(self, priority=PRIORITY_URGENT)

    def _deliver(self, event: "Event") -> None:
        proc = self.process
        if proc.triggered:
            return  # process terminated before interrupt delivery
        # Detach the process from the event it is currently waiting for.
        target = proc._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(proc._bound_resume)
            except ValueError:
                pass
        proc._resume(self)


class Process(Event):
    """A process: a generator driven by the events it yields.

    A ``Process`` is itself an event that triggers when the generator
    terminates — either with the generator's return value (success) or
    with the uncaught exception (failure).
    """

    __slots__ = ("_generator", "_target", "name", "_bound_resume")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        # Inlined Event.__init__ (one Process per spawned generator).
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        # One bound method for the process's whole life: parking on an
        # event appends this same object instead of minting a new bound
        # method per yield.
        self._bound_resume = self._resume
        self._target: Optional[Event] = Initialize(env, self)
        self.name = name or getattr(generator, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not terminated."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits for (``None`` if running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process."""
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        gen = self._generator
        while True:
            try:
                if event._ok:
                    next_event = gen.send(event._value)
                else:
                    # The process handles (or not) the failure.
                    event._defused = True
                    next_event = gen.throw(event._value)
            except StopIteration as stop:
                # Process finished successfully.
                self._ok = True
                self._value = stop.value
                _schedule_at(env, self, env._now, PRIORITY_NORMAL)
                self._target = None
                break
            except BaseException as exc:  # noqa: BLE001 - model errors propagate
                self._ok = False
                self._value = exc
                env.schedule(self)
                self._target = None
                break

            # Fetching .callbacks doubles as the is-this-an-event check:
            # every Event has the attribute, and anything a model could
            # plausibly mis-yield (None, numbers, generators) does not.
            try:
                callbacks = next_event.callbacks
            except AttributeError:
                exc2 = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc2
                continue

            if callbacks is not None:
                # Event not yet processed: park until it triggers.
                self._target = next_event
                callbacks.append(self._bound_resume)
                break
            # Event already processed: feed its outcome straight back in.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} alive={self.is_alive}>"


class Condition(Event):
    """An event that triggers when a predicate over child events holds.

    Used through the :class:`AllOf` / :class:`AnyOf` helpers or the
    ``&`` / ``|`` operators on events.  The condition's value is a dict
    mapping each *triggered* child event to its value, preserving the
    original event order.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if not self._events:
            self.succeed(self._collect())
            return

        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {
            ev: ev._value
            for ev in self._events
            if ev.callbacks is None and ev._ok and ev._value is not _PENDING
        }

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            if not event._ok and not event._defused:
                # Condition already triggered; don't swallow the failure.
                event._defused = False
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self._ok = False
            self._value = event._value
            self.env.schedule(self)
        elif self._evaluate(self._events, self._count):
            self._ok = True
            self._value = self._collect()
            self.env.schedule(self)

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Predicate: every child event has triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Predicate: at least one child event has triggered."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition that triggers once *all* of ``events`` have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers once *any* of ``events`` has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)


class Environment:
    """The simulation environment: clock plus event queue.

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    5
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_active_process",
        "_peak_pending",
        "_sleep_pool",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        # Heap entries are (time, priority, seq, event).
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: High-water mark of the pending-event heap (a perf observable:
        #: memory pressure and heap-op cost both scale with it).
        self._peak_pending = 0
        #: Free list of processed :class:`_Sleep` events (see
        #: :meth:`sleep`).
        self._sleep_pool: list[_Sleep] = []
        for hook in _fresh_env_hooks:
            hook()

    @property
    def peak_pending(self) -> int:
        """Largest number of simultaneously scheduled events so far."""
        return self._peak_pending

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the run's sequence counter)."""
        return self._seq

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between events)."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Timeout:
        """A fire-and-forget timeout drawn from a free list.

        Semantically identical to ``timeout(delay)`` — same scheduling,
        same sequence-number consumption — but the event is recycled by
        the event loop once processed.  Use it only for the discard
        pattern ``yield env.sleep(d)``: the caller must not retain,
        compose, or inspect the returned event afterwards.
        """
        pool = self._sleep_pool
        if not pool:
            return _Sleep(self, delay)
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        ev = pool.pop()
        ev.callbacks = []
        ev._value = None
        ev.delay = delay
        _schedule_at(
            self, ev, self._now + delay if delay else self._now, PRIORITY_NORMAL
        )
        return ev

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process driven by ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Queue ``event`` for processing ``delay`` time units from now."""
        if delay:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past (delay={delay})"
                )
            at = self._now + delay
        else:
            at = self._now
        _schedule_at(self, event, at, priority)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it).

        Single-step specialization of the :meth:`run` fast path: same
        peak-heap accounting, same 1-callback dispatch shortcut, same
        ``_Sleep`` recycling, same undefused-failure propagation —
        interleaving ``step()`` with ``run()`` is behavior-identical to
        one uninterrupted ``run()``.
        """
        queue = self._queue
        if not queue:
            raise IndexError("no more events")
        qlen = len(queue)
        if qlen > self._peak_pending:
            self._peak_pending = qlen
        self._now, _, _, event = heappop(queue)

        callbacks = event.callbacks
        event.callbacks = None
        if len(callbacks) == 1:
            callbacks[0](event)
        else:
            for callback in callbacks:
                callback(event)

        if event._ok:
            sleep_pool = self._sleep_pool
            if event.__class__ is _Sleep and len(sleep_pool) < 128:
                event._value = _PENDING
                sleep_pool.append(event)
        elif not event._defused:
            # An unhandled failure: surface it instead of losing it.
            raise event._value  # type: ignore[misc]

    def run(self, until: Any = None) -> Any:
        """Run the event loop.

        Parameters
        ----------
        until:
            ``None`` — run until the queue drains.
            a number — run until simulated time reaches that point.
            an :class:`Event` — run until it triggers; its value is returned.

        Implementation notes (the simulator's hottest loop):

        * :meth:`step` is inlined — at hundreds of thousands of events
          per run the call overhead is measurable.
        * **Batched same-tick dispatch.**  Events sharing one
          ``(time, priority)`` key are drained as a run: after each
          dispatch the loop peeks the heap top and, while it still
          belongs to the batch, pops it without re-testing the horizon
          or re-storing the clock.  The continuation test is exact
          native order — everything scheduled during the batch carries
          a higher sequence number, so the only entry that can legally
          sort *before* a remaining batch member is an urgent event at
          the same timestamp, and its smaller priority breaks the
          batch back into the outer loop (which pops it first, exactly
          as the unbatched loop would).
        * Cyclic garbage collection is suspended for the duration of the
          loop.  Event/process/generator webs are cyclic by nature, so
          the collector otherwise scans a few hundred thousand live
          objects mid-run to free almost nothing; reference counting
          still reclaims the acyclic majority immediately, and the
          collector catches the rest after the loop returns.  This does
          not affect simulated behavior.
        * Processed ``_Sleep`` events go back on the free list (see
          :meth:`sleep`).
        """
        stop_at: Optional[float] = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    return until.value if until.ok else None
                until.callbacks.append(StopSimulation.callback)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise SimulationError(
                        f"until={stop_at} lies in the past (now={self._now})"
                    )

        queue = self._queue
        sleep_pool = self._sleep_pool
        # ``inf`` stands in for "no deadline" so the loop tests a single
        # float comparison per event instead of a None check + compare.
        horizon = float("inf") if stop_at is None else stop_at
        # Heap size only shrinks at pops, so its high-water mark is
        # always attained just before a pop; tracking it here (in a
        # local) is exact and spares every schedule a len+compare.
        peak = self._peak_pending
        # Bind loop invariants to locals: ~300k iterations make even a
        # LOAD_GLOBAL per event measurable.
        pop = heappop
        sleep_cls = _Sleep
        pending = _PENDING
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while queue:
                head = queue[0]
                at = head[0]
                if at >= horizon:
                    self._now = stop_at  # type: ignore[assignment]
                    return None
                self._now = at
                prio = head[1]
                while True:
                    qlen = len(queue)
                    if qlen > peak:
                        peak = qlen
                    _, _, _, event = pop(queue)

                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        # The overwhelmingly common case: one parked
                        # process.
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)

                    if event._ok:
                        if (
                            event.__class__ is sleep_cls
                            and len(sleep_pool) < 128
                        ):
                            event._value = pending
                            sleep_pool.append(event)
                    elif not event._defused:
                        # An unhandled failure: surface it, don't lose
                        # it.
                        raise event._value  # type: ignore[misc]

                    # Same-key continuation: stay in the batch while the
                    # heap top shares this timestamp and priority class.
                    # An urgent arrival (smaller key) or a later
                    # timestamp falls through to the outer loop, which
                    # re-tests the horizon and pops in native order.
                    if not queue:
                        break
                    head = queue[0]
                    if head[0] != at or head[1] != prio:
                        break
        except StopSimulation as stop:
            return stop.args[0]
        finally:
            # Run-boundary check: events scheduled since the last pop
            # (setup before run(), pushes during the final callback) are
            # still part of the high-water mark.
            qlen = len(queue)
            if qlen > peak:
                peak = qlen
            self._peak_pending = peak
            if gc_was_enabled:
                gc.enable()

        if stop_at is not None:
            # Queue drained before the deadline; clock still advances.
            self._now = stop_at
        return None

    #: Stable handle on the pure-Python loop: ``REPRO_ENGINE=compiled``
    #: rebinds ``run`` (see sim/compiled.py); parity tests and
    #: ``compiled.deactivate()`` reach the reference implementation here.
    _run_pure = run

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
