"""Deterministic discrete-event simulation kernel.

This module implements the event loop at the heart of the DoCeph
reproduction: a SimPy-flavoured kernel built from scratch so that the
whole repository is dependency-free and bit-reproducible.

Design notes
------------
* **Determinism.**  The event heap orders entries by
  ``(time, priority, sequence)``.  The monotonically increasing sequence
  number breaks ties in insertion order, so two runs of the same model
  with the same seed produce identical traces.
* **Processes are generators.**  A process yields events; when a yielded
  event triggers, the process is resumed with the event's value (or the
  event's exception is thrown into it).
* **No wall-clock anywhere.**  ``env.now`` is the only notion of time.

The public surface mirrors the familiar SimPy API (``Environment``,
``Process``, ``Timeout``, ``Event``, ``AllOf``, ``AnyOf``) which keeps the
higher-level hardware models readable to anyone who has written DES
models before.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable, Iterable, Optional

from .exceptions import Interrupt, SimulationError, StopSimulation

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
]

#: Scheduling priority for urgent events (processed before normal events
#: scheduled at the same simulated time).  Used internally for process
#: initialisation and interrupts.
PRIORITY_URGENT = 0

#: Default scheduling priority.
PRIORITY_NORMAL = 1

# Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` *triggers* it, scheduling it on the environment's queue;
    when the event loop pops it, the event is *processed*: all callbacks
    run and any waiting processes resume.

    Attributes
    ----------
    env:
        The owning :class:`Environment`.
    callbacks:
        List of callables invoked with the event when it is processed.
        ``None`` once the event has been processed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once :meth:`succeed`/:meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (only meaningful if triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value.  Raises if the event is not yet triggered."""
        if self._value is _PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception of a failed event, else ``None``."""
        if not self._ok and self._value is not _PENDING:
            return self._value  # type: ignore[return-value]
        return None

    @property
    def defused(self) -> bool:
        """Whether a failure has been marked as handled.

        A failed event whose exception is never retrieved would silently
        swallow the error; the kernel re-raises undefused failures at the
        top of the event loop.
        """
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(
                f"fail() requires an exception, got {exception!r}"
            )
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if self._value is not _PENDING:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class Initialize(Event):
    """Internal: first resumption of a freshly started process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)  # type: ignore[union-attr]
        self._ok = True
        self._value = None
        env.schedule(self, priority=PRIORITY_URGENT)


class _Interruption(Event):
    """Internal: delivers an :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self.callbacks.append(self._deliver)  # type: ignore[union-attr]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.env.schedule(self, priority=PRIORITY_URGENT)

    def _deliver(self, event: "Event") -> None:
        proc = self.process
        if proc.triggered:
            return  # process terminated before interrupt delivery
        # Detach the process from the event it is currently waiting for.
        target = proc._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(proc._resume)
            except ValueError:
                pass
        proc._resume(self)


class Process(Event):
    """A process: a generator driven by the events it yields.

    A ``Process`` is itself an event that triggers when the generator
    terminates — either with the generator's return value (success) or
    with the uncaught exception (failure).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)
        self.name = name or getattr(generator, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not terminated."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits for (``None`` if running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process."""
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The process handles (or not) the failure.
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                # Process finished successfully.
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as exc:  # noqa: BLE001 - model errors propagate
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                exc2 = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc2
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: park until it triggers.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                break
            # Event already processed: feed its outcome straight back in.
            event = next_event

        self._target = None if not isinstance(event, Event) else self._target
        env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} alive={self.is_alive}>"


class Condition(Event):
    """An event that triggers when a predicate over child events holds.

    Used through the :class:`AllOf` / :class:`AnyOf` helpers or the
    ``&`` / ``|`` operators on events.  The condition's value is a dict
    mapping each *triggered* child event to its value, preserving the
    original event order.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if not self._events:
            self.succeed(self._collect())
            return

        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {
            ev: ev._value
            for ev in self._events
            if ev.callbacks is None and ev._ok and ev._value is not _PENDING
        }

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            if not event._ok and not event._defused:
                # Condition already triggered; don't swallow the failure.
                event._defused = False
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self._ok = False
            self._value = event._value
            self.env.schedule(self)
        elif self._evaluate(self._events, self._count):
            self._ok = True
            self._value = self._collect()
            self.env.schedule(self)

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Predicate: every child event has triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Predicate: at least one child event has triggered."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition that triggers once *all* of ``events`` have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers once *any* of ``events`` has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)


class Environment:
    """The simulation environment: clock plus event queue.

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    5
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between events)."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process driven by ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Queue ``event`` for processing ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise IndexError("no more events")
        self._now, _, _, event = heapq.heappop(self._queue)

        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: surface it instead of losing it.
            raise event._value  # type: ignore[misc]

    def run(self, until: Any = None) -> Any:
        """Run the event loop.

        Parameters
        ----------
        until:
            ``None`` — run until the queue drains.
            a number — run until simulated time reaches that point.
            an :class:`Event` — run until it triggers; its value is returned.
        """
        stop_at: Optional[float] = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    return until.value if until.ok else None
                until.callbacks.append(StopSimulation.callback)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise SimulationError(
                        f"until={stop_at} lies in the past (now={self._now})"
                    )

        try:
            while self._queue:
                if stop_at is not None and self._queue[0][0] >= stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation as stop:
            return stop.args[0]

        if stop_at is not None:
            # Queue drained before the deadline; clock still advances.
            self._now = stop_at
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
