"""Exception types used by the discrete-event simulation kernel.

The kernel distinguishes three failure classes:

* :class:`SimulationError` — a bug in the simulation model itself
  (e.g. yielding a non-event from a process).
* :class:`Interrupt` — a cooperative interruption of a process, delivered
  by :meth:`repro.sim.core.Process.interrupt`.
* :class:`StopSimulation` — internal control-flow signal raised to leave
  the event loop when the ``until`` event of :meth:`Environment.run`
  triggers.  Never leaks to user code.
"""

from __future__ import annotations

from typing import Any

__all__ = ["SimulationError", "Interrupt", "StopSimulation"]


class SimulationError(Exception):
    """A structural error in the simulation (model bug, illegal yield)."""


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.core.Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt` (may be ``None``)."""
        return self.args[0]


class StopSimulation(Exception):
    """Internal signal: the event passed to ``Environment.run(until=...)``
    has triggered and the event loop must return."""

    @classmethod
    def callback(cls, event: Any) -> None:
        """Event callback that raises :class:`StopSimulation`."""
        if event.ok:
            raise cls(event.value)
        # Propagate failures of the until-event to the caller of run().
        event.defused = True
        raise event.exception  # type: ignore[misc]
