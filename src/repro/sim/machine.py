"""Flattened callback state machines for hot process types.

A :class:`Machine` replaces ``env.process(generator)`` *at the event
level*: it is an :class:`~repro.sim.core.Event` (exactly like
:class:`~repro.sim.core.Process`) that schedules an urgent kick event
with the same sequence-number cost as ``Initialize``, parks bound-method
states on exactly the events the generator version would park on, and on
completion schedules itself with the same cost as the ``StopIteration``
path.  Simulation digests (sequence counter + clock) and the peak-heap
observable are therefore byte-identical to the generator version; only
the Python-level resumption machinery — generator frames, ``send()``
trampolines, ``StopIteration`` materialization at every subgenerator
boundary — is gone.

The flattening contract (DESIGN.md §13):

1. Creation mints one urgent kick event (parity with ``Initialize``).
2. Every wait parks a state callback on the *same* event the generator
   version yielded, adding no events; ``yield from`` boundaries
   disappear entirely (a subgenerator call is just more states).
3. Completion schedules the machine itself at normal priority (parity
   with the ``StopIteration`` completion event); joiners ``yield`` the
   machine exactly as they would a :class:`Process`.
4. Failures mirror ``Process``: the machine event fails and undefused
   failures surface in the run loop.
5. Interruptible machines duck-type as :class:`Process` for
   :class:`~repro.sim.core._Interruption`: they maintain ``_target`` and
   ``_bound_resume`` at every park and route ``_resume`` of a failed
   interruption event to their interrupt handler.

Cold or deeply branchy sub-paths need not be hand-flattened:
:meth:`Machine._drive` runs any generator with ``Process._resume``'s
exact parking semantics but calls a continuation on ``StopIteration``
instead of scheduling a completion event — i.e. ``yield from`` parity,
not process parity.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from .core import (
    Event,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    _PENDING,
    _Interruption,
    _schedule_at,
)
from .exceptions import Interrupt, SimulationError

__all__ = ["Machine"]


class _Kick(Event):
    """Internal: first activation of a freshly started machine.

    Sequence-number and priority parity with
    :class:`~repro.sim.core.Initialize` (one urgent event per start).
    """

    __slots__ = ()

    def __init__(self, env: Any, callback: Callable[[Event], None]) -> None:
        # Inlined Event.__init__, mirroring Initialize.__init__.
        self.env = env
        self.callbacks = [callback]
        self._value = None
        self._ok = True
        self._defused = False
        _schedule_at(env, self, env._now, PRIORITY_URGENT)


class Machine(Event):
    """Base class for flattened process state machines.

    Subclasses call :meth:`_start` once from their constructor, park
    states with :meth:`_park`, and end with :meth:`_finish` or
    :meth:`_fail`.  The charge helper and the generator driver cover the
    two recurring composition patterns (CPU charges and cold-path
    ``yield from``).
    """

    __slots__ = (
        "name",
        "_target",
        "_bound_resume",
        # generator-driver state (cold-path `yield from` composition)
        "_gen",
        "_gen_cont",
        "_gen_step_cb",
        # charge-chain state (`yield from thread.charge(w)` parity)
        "_chg_thread",
        "_chg_wall",
        "_chg_req",
        "_chg_cont",
        "_chg_granted_cb",
        "_chg_done_cb",
    )

    def __init__(self, env: Any, name: str) -> None:
        # Inlined Event.__init__ (machines are minted on hot paths).
        # Only the Event-protocol fields are set; the interruption,
        # charge-chain and generator-driver slots stay *unset* unless a
        # subclass opts in via _init_interruptible() — short-lived
        # machines minted tens of thousands of times (rx-chunk) must not
        # pay a dozen dead attribute writes each.
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.name = name

    def _init_interruptible(self) -> None:
        """Initialize the slots :meth:`_resume`, :meth:`_charge` and
        :meth:`_drive` inspect.  Mandatory for machines that may be
        interrupted, charge CPU, or drive generators."""
        self._target = None
        self._bound_resume = None
        self._gen = None
        self._gen_cont = None
        self._gen_step_cb = None
        self._chg_thread = None
        self._chg_wall = 0.0
        self._chg_req = None
        self._chg_cont = None
        self._chg_granted_cb = None
        self._chg_done_cb = None

    # -- process duck-typing ----------------------------------------------
    @property
    def is_alive(self) -> bool:
        """``True`` while the machine has not completed."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this machine currently waits for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`~repro.sim.exceptions.Interrupt` into the
        machine (same event-level protocol as ``Process.interrupt``)."""
        _Interruption(self, cause)

    # -- state plumbing ----------------------------------------------------
    def _start(self, state: Callable[[Event], None]) -> None:
        """Schedule the kick that runs ``state`` (Initialize parity)."""
        _Kick(self.env, state)

    def _park(self, event: Event, state: Callable[[Event], None]) -> None:
        """Wait for ``event``; ``state`` runs when it is processed.

        Maintains the Process duck-type fields so interruption can
        detach the parked callback, exactly like ``_Interruption``
        detaches ``Process._bound_resume``.
        """
        self._target = event
        self._bound_resume = state
        event.callbacks.append(state)  # type: ignore[union-attr]

    def _finish(self, value: Any = None) -> None:
        """Complete successfully (StopIteration-path parity)."""
        self._ok = True
        self._value = value
        env = self.env
        _schedule_at(env, self, env._now, PRIORITY_NORMAL)
        self._target = None

    def _fail(self, exc: BaseException) -> None:
        """Complete as failed (Process failure-path parity)."""
        self._ok = False
        self._value = exc
        self.env.schedule(self)
        self._target = None

    # -- interruption ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Entry point for :class:`_Interruption` delivery.

        The interruption already detached the parked state callback from
        ``_target``; route the failure into whatever composition helper
        is mid-flight, then hand the (by then defused) interrupt to the
        subclass hook.
        """
        if event._ok:  # pragma: no cover - only interruptions route here
            raise SimulationError(f"unexpected resume of machine {self.name!r}")
        if self._gen is not None:
            # Exact Process._resume throw semantics: the generator's
            # try/finally blocks run before the machine reacts.
            self._gen_throw(event)
            return
        if self._chg_req is not None:
            # Parity with CpuComplex.execute's `finally: pool.finish(req)`
            # unwinding as the Interrupt propagates out of the charge.
            req = self._chg_req
            self._chg_req = None
            self._chg_cont = None
            self._chg_thread.cpu._core_pool.finish(req)
        exc = event._value
        if isinstance(exc, Interrupt):
            self._on_interrupt(exc)
        else:  # pragma: no cover - interruptions always carry Interrupt
            self._fail(exc)

    def _on_interrupt(self, exc: Interrupt) -> None:
        """Subclass hook: the machine was interrupted between states.

        Default mirrors the common ``except Interrupt: return`` loop
        idiom — complete successfully with ``None``.
        """
        self._finish(None)

    # -- charge chain ------------------------------------------------------
    def _charge(
        self, thread: Any, work: float, cont: Callable[[], None]
    ) -> None:
        """Event-parity equivalent of ``yield from thread.charge(work)``.

        Requests a core, sleeps the scaled wall time, accounts the busy
        seconds, releases the core, then calls ``cont`` — the same two
        parks (request grant, sleep) and the same accounting order as
        :meth:`~repro.hw.cpu.CpuComplex.execute`.
        """
        if work <= 0:
            if work < 0:
                raise SimulationError(f"negative CPU work: {work}")
            cont()
            return
        cpu = thread.cpu
        self._chg_thread = thread
        self._chg_wall = work / cpu.perf
        self._chg_cont = cont
        if self._chg_granted_cb is None:
            self._chg_granted_cb = self._chg_granted
            self._chg_done_cb = self._chg_done
        req = cpu._core_pool.request()
        self._chg_req = req
        self._park(req, self._chg_granted_cb)

    def _chg_granted(self, event: Event) -> None:
        if not event._ok:
            self._resume(event)
            return
        self._park(self.env.sleep(self._chg_wall), self._chg_done_cb)

    def _chg_done(self, event: Event) -> None:
        if not event._ok:
            self._resume(event)
            return
        thread = self._chg_thread
        cpu = thread.cpu
        wall = self._chg_wall
        cpu.accounting.add_busy(thread.category, thread.name, wall)
        if cpu.observer is not None:
            cpu.observer(
                thread.category, thread.name, cpu.name, self.env.now, wall
            )
        req = self._chg_req
        self._chg_req = None
        cont = self._chg_cont
        self._chg_cont = None
        cpu._core_pool.finish(req)
        cont()  # type: ignore[misc]

    def _ctx_switch(
        self, thread: Any, cont: Callable[[], None], count: int = 1
    ) -> None:
        """Event-parity equivalent of ``yield from thread.ctx_switch()``."""
        cpu = thread.cpu
        cpu.accounting.add_ctx(thread.category, count)
        self._charge_raw(thread, count * cpu.ctx_switch_cost, cont)

    def _charge_raw(
        self, thread: Any, work: float, cont: Callable[[], None]
    ) -> None:
        # ctx_switch charges pre-scaled cost with no negative-work guard
        # (count and ctx_switch_cost are validated at construction).
        if work <= 0:
            cont()
            return
        self._charge(thread, work, cont)

    # -- generator driver --------------------------------------------------
    def _drive(
        self,
        gen: Generator[Any, Any, Any],
        cont: Callable[[Any], None],
    ) -> None:
        """Run ``gen`` with ``yield from`` parity.

        Parks on the events ``gen`` yields exactly like
        ``Process._resume`` (same already-processed fast path, same
        defuse-then-throw failure delivery) but calls ``cont(value)`` on
        ``StopIteration`` instead of scheduling a completion event, and
        routes an uncaught :class:`Interrupt` to :meth:`_on_interrupt` /
        anything else to :meth:`_fail` — the propagation a generator
        caller would see.
        """
        self._gen = gen
        self._gen_cont = cont
        if self._gen_step_cb is None:
            self._gen_step_cb = self._gen_step
        self._gen_send(None)

    def _gen_step(self, event: Event) -> None:
        if event._ok:
            self._gen_send(event._value)
        else:
            self._gen_throw(event)

    def _gen_send(self, value: Any) -> None:
        gen = self._gen
        while True:
            try:
                next_event = gen.send(value)  # type: ignore[union-attr]
            except StopIteration as stop:
                self._gen_done(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - parity with Process
                self._gen_error(exc)
                return
            try:
                callbacks = next_event.callbacks
            except AttributeError:
                self._gen_throw_exc(
                    SimulationError(
                        f"machine {self.name!r} drove a generator that "
                        f"yielded a non-event: {next_event!r}"
                    )
                )
                return
            if callbacks is not None:
                self._park(next_event, self._gen_step_cb)  # type: ignore[arg-type]
                return
            if not next_event._ok:
                next_event._defused = True
                self._gen_throw_exc(next_event._value)
                return
            value = next_event._value

    def _gen_throw(self, event: Event) -> None:
        event._defused = True
        self._gen_throw_exc(event._value)

    def _gen_throw_exc(self, exc: BaseException) -> None:
        gen = self._gen
        try:
            next_event = gen.throw(exc)  # type: ignore[union-attr]
        except StopIteration as stop:
            self._gen_done(stop.value)
            return
        except BaseException as caught:  # noqa: BLE001 - parity with Process
            self._gen_error(caught)
            return
        try:
            callbacks = next_event.callbacks
        except AttributeError:
            self._gen_throw_exc(
                SimulationError(
                    f"machine {self.name!r} drove a generator that "
                    f"yielded a non-event: {next_event!r}"
                )
            )
            return
        if callbacks is not None:
            self._park(next_event, self._gen_step_cb)  # type: ignore[arg-type]
            return
        if not next_event._ok:
            next_event._defused = True
            self._gen_throw_exc(next_event._value)
            return
        self._gen_send(next_event._value)

    def _gen_done(self, value: Any) -> None:
        self._gen = None
        cont = self._gen_cont
        self._gen_cont = None
        cont(value)  # type: ignore[misc]

    def _gen_error(self, exc: BaseException) -> None:
        self._gen = None
        self._gen_cont = None
        if isinstance(exc, Interrupt):
            self._on_interrupt(exc)
        else:
            self._on_gen_error(exc)

    def _on_gen_error(self, exc: BaseException) -> None:
        """Subclass hook: a driven generator raised (non-Interrupt).

        Default mirrors an uncaught exception unwinding a process.
        """
        self._fail(exc)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} alive={self.is_alive}>"
