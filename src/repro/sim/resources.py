"""Shared-resource primitives for the simulation kernel.

Provides the queuing building blocks the hardware models are made of:

* :class:`Resource` — ``capacity`` identical servers, FIFO queue
  (CPU cores, DMA channels, SSD submission slots).
* :class:`PriorityResource` — like :class:`Resource` but requests carry a
  priority (smaller = more urgent); ties break FIFO.
* :class:`Container` — a continuous quantity with bounded capacity
  (buffer-pool bytes).
* :class:`Store` / :class:`FilterStore` — queues of Python objects
  (dispatch queues, mailboxes).

All request/release operations are events, so processes simply ``yield``
them.  Requests support the context-manager protocol::

    with resource.request() as req:
        yield req
        ...             # holding the resource
    # released on exit
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .core import Environment, Event, PRIORITY_NORMAL, _PENDING, _schedule_at
from .exceptions import SimulationError

__all__ = [
    "Resource",
    "PriorityResource",
    "Request",
    "PriorityRequest",
    "Release",
    "Container",
    "Store",
    "FilterStore",
]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        # Inlined Event.__init__ — requests are minted per hold on
        # resources that don't recycle (and for every pool miss).
        self.env = resource.env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        if not self.triggered:
            self.resource._withdraw(self)

    def release(self) -> "Release":
        """Release the resource claimed by this request."""
        return Release(self.resource, self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._value is not _PENDING:  # triggered (inlined: hot path)
            resource = self.resource
            resource._do_release(self)
            # Recycle the request on opted-in resources: after a
            # with-block release nothing observes the event again, and
            # ``callbacks is None`` proves the event loop is done with
            # it.  Priority requests keep their own identity.
            pool = resource._request_pool
            if (
                pool is not None
                and self.callbacks is None
                and self.__class__ is Request
                and len(pool) < 32
            ):
                pool.append(self)
        else:
            self.cancel()


class PriorityRequest(Request):
    """A prioritized claim; smaller ``priority`` is served first."""

    __slots__ = ("priority", "seq")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self.seq = resource._next_seq()
        super().__init__(resource)

    def sort_key(self) -> tuple[int, int]:
        return (self.priority, self.seq)


class Release(Event):
    """Event representing the release of a previously granted request."""

    __slots__ = ()

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        resource._do_release(request)
        self.succeed()


class Resource:
    """``capacity`` identical servers with a FIFO wait queue.

    ``recycle_requests=True`` opts the resource into a request free
    list: a :class:`Request` released by its with-block is reset and
    reused by a later :meth:`request` call.  Only safe for resources
    whose callers never inspect a request after releasing it (the
    with-statement discipline) — the hardware models' core pools, DMA
    channels, and NIC pipes qualify.
    """

    __slots__ = ("env", "capacity", "users", "queue", "_request_pool")

    def __init__(
        self,
        env: Environment,
        capacity: int = 1,
        recycle_requests: bool = False,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()
        self._request_pool: Optional[list[Request]] = (
            [] if recycle_requests else None
        )

    @property
    def count(self) -> int:
        """Number of currently granted requests."""
        return len(self.users)

    def request(self) -> Request:
        """Claim one unit of the resource (an event to ``yield``)."""
        pool = self._request_pool
        if pool:
            # Recycled requests skip the Event/Request constructor chain
            # entirely; _do_request and succeed() are inlined (a pooled
            # request's _ok is already True from its granted life).
            req = pool.pop()
            req.callbacks = []
            req._defused = False
            users = self.users
            if len(users) < self.capacity and not self.queue:
                users.append(req)
                req._value = None
                env = self.env
                _schedule_at(env, req, env._now, PRIORITY_NORMAL)
            else:
                req._value = _PENDING
                self.queue.append(req)
            return req
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release a granted request outside the with-statement form."""
        return Release(self, request)

    def finish(self, request: Request) -> None:
        """Hot-path equivalent of ``Request.__exit__``: release a
        granted request (or cancel an ungranted one) and recycle it when
        the resource opted in.  For model inner loops that would pay the
        with-statement's ``__enter__``/``__exit__`` dispatch per call;
        semantics are identical."""
        if request._value is not _PENDING:
            # Inlined _do_release + _grant_next.
            users = self.users
            try:
                users.remove(request)
            except ValueError:
                raise SimulationError(
                    "release of a request that holds nothing"
                ) from None
            queue = self.queue
            if queue:
                capacity = self.capacity
                while queue and len(users) < capacity:
                    nxt = queue.popleft()
                    users.append(nxt)
                    nxt.succeed()
            pool = self._request_pool
            if (
                pool is not None
                and request.callbacks is None
                and request.__class__ is Request
                and len(pool) < 32
            ):
                pool.append(request)
        else:
            self._withdraw(request)

    # -- internals -----------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _withdraw(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _do_release(self, request: Request) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing an ungranted or already-released request is a
            # model bug; surface it loudly.
            raise SimulationError("release of a request that holds nothing")
        self._grant_next()

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.count}/{self.capacity} busy,"
            f" {len(self.queue)} queued>"
        )


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority."""

    __slots__ = ("_seq",)

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(request)
            request.succeed()
            return
        # Insert in (priority, seq) order; deque insort by linear scan is
        # fine at the queue lengths these models produce.
        key = request.sort_key()
        for i, waiting in enumerate(self.queue):
            assert isinstance(waiting, PriorityRequest)
            if key < waiting.sort_key():
                self.queue.insert(i, request)
                return
        self.queue.append(request)


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise SimulationError(f"get amount must be positive: {amount}")
        # Inlined Event.__init__ (hot: every throttle acquire).
        self.env = container.env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.amount = amount
        container._get_waiters.append(self)
        container._trigger()


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise SimulationError(f"put amount must be positive: {amount}")
        # Inlined Event.__init__ (hot: every throttle release).
        self.env = container.env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.amount = amount
        container._put_waiters.append(self)
        container._trigger()


class Container:
    """A homogeneous quantity with bounded level (e.g. pool of bytes)."""

    __slots__ = ("env", "capacity", "_level", "_get_waiters", "_put_waiters")

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("initial level out of bounds")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._get_waiters: deque[_ContainerGet] = deque()
        self._put_waiters: deque[_ContainerPut] = deque()

    @property
    def level(self) -> float:
        """Currently available amount."""
        return self._level

    def get(self, amount: float) -> _ContainerGet:
        """Withdraw ``amount`` (waits until available)."""
        return _ContainerGet(self, amount)

    def put(self, amount: float) -> _ContainerPut:
        """Deposit ``amount`` (waits until it fits under capacity)."""
        return _ContainerPut(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self.capacity:
                    self._put_waiters.popleft()
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount:
                    self._get_waiters.popleft()
                    self._level -= get.amount
                    get.succeed()
                    progressed = True


class _StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(
        self,
        store: "Store",
        filter: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        # Inlined Event.__init__ (hot: every dispatch-queue pop).
        self.env = store.env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.filter = filter
        store._getters.append(self)
        store._trigger()


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        # Inlined Event.__init__ (hot: every dispatch-queue push).
        self.env = store.env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.item = item
        store._putters.append(self)
        store._trigger()


class Store:
    """FIFO queue of arbitrary items with optional bounded capacity."""

    __slots__ = ("env", "capacity", "items", "_getters", "_putters")

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[_StoreGet] = deque()
        self._putters: deque[_StorePut] = deque()

    def put(self, item: Any) -> _StorePut:
        """Append ``item`` (waits while the store is full)."""
        return _StorePut(self, item)

    def get(self) -> _StoreGet:
        """Pop the oldest item (waits while the store is empty)."""
        return _StoreGet(self)

    def __len__(self) -> int:
        return len(self.items)

    def _trigger(self) -> None:
        # succeed() only schedules (no user code runs synchronously), so
        # matching all putters first and then all satisfiable getters
        # produces the same trigger order as alternating single steps.
        # The outer loop re-admits queued putters after getters free
        # capacity on a bounded store; unbounded stores take one pass.
        items = self.items
        while True:
            putters = self._putters
            if putters:
                capacity = self.capacity
                while putters and len(items) < capacity:
                    put = putters.popleft()
                    items.append(put.item)
                    put.succeed()
            getters = self._getters
            progressed = False
            while getters and items:
                getters.popleft().succeed(items.popleft())
                progressed = True
            if not (progressed and self._putters):
                return


class FilterStore(Store):
    """A :class:`Store` whose getters may select items by predicate."""

    __slots__ = ()

    def get(  # type: ignore[override]
        self, filter: Optional[Callable[[Any], bool]] = None
    ) -> _StoreGet:
        """Pop the oldest item matching ``filter`` (all items if ``None``)."""
        return _StoreGet(self, filter)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Try every waiting getter (a later getter's filter may match
            # even when the head getter's doesn't).
            for get in list(self._getters):
                matched = None
                for item in self.items:
                    if get.filter is None or get.filter(item):
                        matched = item
                        break
                if matched is not None:
                    self.items.remove(matched)
                    self._getters.remove(get)
                    get.succeed(matched)
                    progressed = True
