"""Shared-resource primitives for the simulation kernel.

Provides the queuing building blocks the hardware models are made of:

* :class:`Resource` — ``capacity`` identical servers, FIFO queue
  (CPU cores, DMA channels, SSD submission slots).
* :class:`PriorityResource` — like :class:`Resource` but requests carry a
  priority (smaller = more urgent); ties break FIFO.
* :class:`Container` — a continuous quantity with bounded capacity
  (buffer-pool bytes).
* :class:`Store` / :class:`FilterStore` — queues of Python objects
  (dispatch queues, mailboxes).

All request/release operations are events, so processes simply ``yield``
them.  Requests support the context-manager protocol::

    with resource.request() as req:
        yield req
        ...             # holding the resource
    # released on exit
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .core import Environment, Event
from .exceptions import SimulationError

__all__ = [
    "Resource",
    "PriorityResource",
    "Request",
    "PriorityRequest",
    "Release",
    "Container",
    "Store",
    "FilterStore",
]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        if not self.triggered:
            self.resource._withdraw(self)

    def release(self) -> "Release":
        """Release the resource claimed by this request."""
        return Release(self.resource, self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self.triggered:
            self.resource._do_release(self)
        else:
            self.cancel()


class PriorityRequest(Request):
    """A prioritized claim; smaller ``priority`` is served first."""

    __slots__ = ("priority", "seq")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self.seq = resource._next_seq()
        super().__init__(resource)

    def sort_key(self) -> tuple[int, int]:
        return (self.priority, self.seq)


class Release(Event):
    """Event representing the release of a previously granted request."""

    __slots__ = ()

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        resource._do_release(request)
        self.succeed()


class Resource:
    """``capacity`` identical servers with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of currently granted requests."""
        return len(self.users)

    def request(self) -> Request:
        """Claim one unit of the resource (an event to ``yield``)."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release a granted request outside the with-statement form."""
        return Release(self, request)

    # -- internals -----------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _withdraw(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _do_release(self, request: Request) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing an ungranted or already-released request is a
            # model bug; surface it loudly.
            raise SimulationError("release of a request that holds nothing")
        self._grant_next()

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.count}/{self.capacity} busy,"
            f" {len(self.queue)} queued>"
        )


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(request)
            request.succeed()
            return
        # Insert in (priority, seq) order; deque insort by linear scan is
        # fine at the queue lengths these models produce.
        key = request.sort_key()
        for i, waiting in enumerate(self.queue):
            assert isinstance(waiting, PriorityRequest)
            if key < waiting.sort_key():
                self.queue.insert(i, request)
                return
        self.queue.append(request)


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.env)
        if amount <= 0:
            raise SimulationError(f"get amount must be positive: {amount}")
        self.amount = amount
        container._get_waiters.append(self)
        container._trigger()


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.env)
        if amount <= 0:
            raise SimulationError(f"put amount must be positive: {amount}")
        self.amount = amount
        container._put_waiters.append(self)
        container._trigger()


class Container:
    """A homogeneous quantity with bounded level (e.g. pool of bytes)."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("initial level out of bounds")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._get_waiters: deque[_ContainerGet] = deque()
        self._put_waiters: deque[_ContainerPut] = deque()

    @property
    def level(self) -> float:
        """Currently available amount."""
        return self._level

    def get(self, amount: float) -> _ContainerGet:
        """Withdraw ``amount`` (waits until available)."""
        return _ContainerGet(self, amount)

    def put(self, amount: float) -> _ContainerPut:
        """Deposit ``amount`` (waits until it fits under capacity)."""
        return _ContainerPut(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self.capacity:
                    self._put_waiters.popleft()
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount:
                    self._get_waiters.popleft()
                    self._level -= get.amount
                    get.succeed()
                    progressed = True


class _StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(
        self,
        store: "Store",
        filter: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        super().__init__(store.env)
        self.filter = filter
        store._getters.append(self)
        store._trigger()


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._putters.append(self)
        store._trigger()


class Store:
    """FIFO queue of arbitrary items with optional bounded capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[_StoreGet] = deque()
        self._putters: deque[_StorePut] = deque()

    def put(self, item: Any) -> _StorePut:
        """Append ``item`` (waits while the store is full)."""
        return _StorePut(self, item)

    def get(self) -> _StoreGet:
        """Pop the oldest item (waits while the store is empty)."""
        return _StoreGet(self)

    def __len__(self) -> int:
        return len(self.items)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._getters and self.items:
                if self._match_get():
                    progressed = True

    def _match_get(self) -> bool:
        get = self._getters[0]
        if self.items:
            self._getters.popleft()
            get.succeed(self.items.popleft())
            return True
        return False


class FilterStore(Store):
    """A :class:`Store` whose getters may select items by predicate."""

    def get(  # type: ignore[override]
        self, filter: Optional[Callable[[Any], bool]] = None
    ) -> _StoreGet:
        """Pop the oldest item matching ``filter`` (all items if ``None``)."""
        return _StoreGet(self, filter)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Try every waiting getter (a later getter's filter may match
            # even when the head getter's doesn't).
            for get in list(self._getters):
                matched = None
                for item in self.items:
                    if get.filter is None or get.filter(item):
                        matched = item
                        break
                if matched is not None:
                    self.items.remove(matched)
                    self._getters.remove(get)
                    get.succeed(matched)
                    progressed = True
