"""Cross-layer distributed tracing with critical-path analysis.

The paper's headline claim is *where* cycles go — ``msgr-worker`` vs
``bstore`` vs ``tp_osd_tp``, host vs DPU — but ``CpuSampler`` windows
and ``OpTracker`` stage marks only answer that in aggregate.  This
module follows a *single* operation end to end:

``RadosClient`` op → messenger send/recv (context carried on the
``Message``) → OSD opqueue/PG → ``ProxyObjectStore`` dispatch → RPC call
or DMA pipeline segments (one span per 2 MB segment, so stage/transmit
overlap is visible) → host BlueStore ``queue_transaction`` → replication
sub-ops.  Each span records simulated begin/end times, the node + CPU
complex + thread category that executed it, and byte counts.

Design rules
------------

**Determinism.**  A :class:`Tracer` mints trace/span ids from its own
:class:`~repro.util.rng.SeededRng` stream, so two runs with the same
seed produce byte-identical span sets (see :meth:`TraceReport.fingerprint`).

**Zero perturbation.**  Tracing hooks are synchronous Python
bookkeeping only: no simulation events, no timeouts, no CPU charges, no
draws from any shared RNG stream.  With no tracer attached (the
default) every hook is a guarded no-op and the event sequence is
bit-identical to an untraced run; with a tracer attached only
*observation* changes, never simulated timing.

**Causality model.**  Parent/child edges are *time-nested* (a child
begins and ends within its parent).  Causality that is not time-nested
— a receive that starts after its send finished, a retry that follows a
failed attempt — is expressed as span *links* instead, so the span tree
stays well-formed under the nesting invariant.

Critical-path extraction walks backwards from a root span's end: at
each step the predecessor is the child-or-link with the latest end time
not after the cursor; the gap between that end and the cursor is the
current span's *exclusive* (self) time.  Summing exclusive time by span
name answers "what would speeding up DMA actually buy".
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from .util.rng import SeededRng

__all__ = [
    "QOS_CATEGORY",
    "Span",
    "SpanContext",
    "Tracer",
    "TraceReport",
    "PathStep",
    "simulation_digest",
]

#: Tolerance for float comparisons on simulated timestamps.
EPS = 1e-9

#: Span category for QoS-plane work (admission shedding, mClock
#: scheduling decisions) — keeps serving-control spans separable from
#: data-path categories (``client``/``msgr``/``osd``/``bstore``) in
#: per-category CPU attribution and span queries.
QOS_CATEGORY = "qos"


class Span:
    """One timed unit of work attributed to a node/CPU/thread.

    Created through :meth:`Tracer.start_span` (or
    :meth:`SpanContext.start_span`); finished explicitly with
    :meth:`finish` / :meth:`error`.  All mutators are plain attribute
    updates — no simulation side effects.
    """

    __slots__ = (
        "tracer", "trace_id", "span_id", "parent", "parent_id", "name",
        "node", "cpu", "thread", "category", "begin", "end", "nbytes",
        "status", "tags", "events", "links",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: int,
        span_id: int,
        parent: Optional["Span"],
        name: str,
        begin: float,
        node: str,
        cpu: str,
        thread: str,
        category: str,
        nbytes: int = 0,
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent = parent
        self.parent_id = parent.span_id if parent is not None else None
        self.name = name
        self.begin = begin
        self.end: Optional[float] = None
        self.node = node
        self.cpu = cpu
        self.thread = thread
        self.category = category
        self.nbytes = nbytes
        self.status = "ok"
        self.tags: dict[str, Any] = {}
        self.events: list[tuple[float, str]] = []
        #: (span_id, kind) causal links that are not time-nested
        #: (``follows``: cross-wire/async causality, ``retry``: this span
        #: retries the linked failed span).
        self.links: list[tuple[int, str]] = []

    # -- mutators ----------------------------------------------------------
    def event(self, t: float, name: str) -> None:
        """Record a point-in-time annotation (OpTracker stage marks are
        folded in through here, so the two facilities cannot drift)."""
        self.events.append((t, name))

    def tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def link(self, other: "Span | int", kind: str = "follows") -> None:
        """Add a causal link to another span (by object or id)."""
        other_id = other.span_id if isinstance(other, Span) else other
        self.links.append((other_id, kind))

    def finish(self, now: float, status: Optional[str] = None) -> None:
        if self.end is None:
            self.end = now
        if status is not None:
            self.status = status

    def error(self, now: float, reason: str) -> None:
        """Finish the span in error state with a reason tag."""
        self.tag("error", reason)
        self.finish(now, status="error")

    # -- context -----------------------------------------------------------
    @property
    def context(self) -> "SpanContext":
        """The propagation handle carried on messages/transactions."""
        return SpanContext(self.tracer, self)

    def child(self, name: str, now: float, **kw: Any) -> "Span":
        return self.tracer.start_span(name, now, parent=self, **kw)

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.begin

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} [{self.begin:.6f}"
            f"..{'?' if self.end is None else format(self.end, '.6f')}]"
            f" {self.node}/{self.category}>"
        )


@dataclass(frozen=True)
class SpanContext:
    """What actually travels between layers: tracer + active span.

    Messages, transactions and RPC requests carry one as a dynamic
    ``span_ctx`` attribute (the same idiom as ``tracked_op`` /
    ``throttle_release``); layers that find ``None`` skip all tracing.
    """

    tracer: "Tracer"
    span: Span

    @property
    def trace_id(self) -> int:
        return self.span.trace_id

    @property
    def span_id(self) -> int:
        return self.span.span_id

    def start_span(self, name: str, now: float, **kw: Any) -> Span:
        """Start a child span of this context."""
        return self.tracer.start_span(name, now, parent=self.span, **kw)


class Tracer:
    """Mints deterministic ids, owns the span list and the CPU ledger.

    ``seed`` feeds a private :class:`SeededRng` stream used *only* for
    id minting — no shared simulation stream is ever consumed, so
    attaching a tracer cannot shift any other random draw.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._ids = SeededRng(seed).child("trace").stream("ids")
        self._used_ids: set[int] = set()
        self.spans: list[Span] = []
        #: (t_complete, cpu_name, category, busy_seconds) — appended by
        #: the :class:`~repro.hw.cpu.CpuComplex` observer hook at the
        #: instant each charge finishes, i.e. exactly when the complex's
        #: own accounting is updated.  This is the ledger the span-level
        #: attribution is cross-checked against ``CpuSampler`` windows.
        self.cpu_samples: list[tuple[float, str, str, float]] = []
        self.cluster: Any = None

    # -- ids ---------------------------------------------------------------
    def _mint_id(self) -> int:
        while True:
            i = self._ids.getrandbits(64)
            if i not in self._used_ids:
                self._used_ids.add(i)
                return i

    # -- span creation -----------------------------------------------------
    def start_span(
        self,
        name: str,
        now: float,
        *,
        parent: Optional[Span] = None,
        trace_id: Optional[int] = None,
        thread: Any = None,
        node: Optional[str] = None,
        cpu: Optional[str] = None,
        category: Optional[str] = None,
        thread_name: Optional[str] = None,
        nbytes: int = 0,
    ) -> Span:
        """Start a span.  ``thread`` may be a
        :class:`~repro.hw.cpu.SimThread`, from which node/CPU/category
        are derived; explicit keywords override."""
        if thread is not None:
            cpu = cpu or thread.cpu.name
            category = category or thread.category
            thread_name = thread_name or thread.name
        if cpu is not None and node is None:
            node = cpu.split(".")[0]
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else self._mint_id()
        span = Span(
            tracer=self,
            trace_id=trace_id,
            span_id=self._mint_id(),
            parent=parent,
            name=name,
            begin=now,
            node=node or "?",
            cpu=cpu or "?",
            thread=thread_name or "?",
            category=category or "?",
            nbytes=nbytes,
        )
        self.spans.append(span)
        return span

    # -- CPU observer ------------------------------------------------------
    def on_cpu(
        self, category: str, thread: str, cpu_name: str, now: float,
        busy: float,
    ) -> None:
        """CpuComplex observer hook: mirror one completed charge."""
        self.cpu_samples.append((now, cpu_name, category, busy))

    def cpu_attribution(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
        cpus: Optional[Iterable[str]] = None,
    ) -> dict[str, float]:
        """Busy seconds per category over ``(start, end]``, optionally
        restricted to a set of CPU complex names."""
        names = set(cpus) if cpus is not None else None
        out: dict[str, float] = {}
        for t, cpu_name, category, busy in self.cpu_samples:
            if start is not None and t <= start + EPS:
                continue
            if end is not None and t > end + EPS:
                continue
            if names is not None and cpu_name not in names:
                continue
            out[category] = out.get(category, 0.0) + busy
        return out

    # -- wiring ------------------------------------------------------------
    def attach_cluster(self, cluster: Any) -> None:
        """Wire this tracer into a built cluster: the client mints root
        spans, every CPU complex reports completed charges."""
        self.cluster = cluster
        cluster.tracer = self
        if cluster.client is not None:
            cluster.client.tracer = self
        complexes = list(cluster.host_cpus()) + list(cluster.dpu_cpus())
        if cluster.client_cpu is not None:
            complexes.append(cluster.client_cpu)
        for cpu in complexes:
            cpu.observer = self.on_cpu

    def report(
        self, window: Optional[tuple[float, float]] = None
    ) -> "TraceReport":
        return TraceReport(spans=list(self.spans),
                           cpu_samples=list(self.cpu_samples),
                           window=window, seed=self.seed)


# ---------------------------------------------------------------------------
# analysis


@dataclass(frozen=True)
class PathStep:
    """One hop of a critical path: ``span`` is on the path and
    ``(t0, t1)`` is the interval exclusively attributed to it."""

    span: Span
    t0: float
    t1: float

    @property
    def self_time(self) -> float:
        return self.t1 - self.t0


def _canonical_span(span: Span) -> dict[str, Any]:
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "node": span.node,
        "cpu": span.cpu,
        "thread": span.thread,
        "category": span.category,
        "begin": round(span.begin, 9),
        "end": None if span.end is None else round(span.end, 9),
        "nbytes": span.nbytes,
        "status": span.status,
        "tags": {k: span.tags[k] for k in sorted(span.tags)},
        "events": [(round(t, 9), name) for t, name in span.events],
        "links": sorted(span.links),
    }


@dataclass
class TraceReport:
    """The analyzed view over one run's spans.

    Attached to :class:`~repro.bench.radosbench.BenchResult` when a
    tracer is wired into the cluster; also the object behind the
    ``repro trace`` CLI subcommand.
    """

    spans: list[Span]
    cpu_samples: list[tuple[float, str, str, float]] = field(
        default_factory=list
    )
    #: Measurement window ``(open, close)`` the CPU cross-check uses.
    window: Optional[tuple[float, float]] = None
    seed: int = 0

    # -- structure ---------------------------------------------------------
    def traces(self) -> dict[int, list[Span]]:
        """Spans grouped by trace id."""
        out: dict[int, list[Span]] = {}
        for span in self.spans:
            out.setdefault(span.trace_id, []).append(span)
        return out

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def find(self, name_prefix: str) -> list[Span]:
        return [s for s in self.spans if s.name.startswith(name_prefix)]

    # -- determinism -------------------------------------------------------
    def fingerprint(self) -> str:
        """sha256 over the canonicalized span set.

        Spans are sorted by (begin, trace id, span id); timestamps are
        rounded to nanoseconds.  Two runs with the same seeds must
        produce identical fingerprints."""
        docs = [
            _canonical_span(s)
            for s in sorted(
                self.spans, key=lambda s: (s.begin, s.trace_id, s.span_id)
            )
        ]
        blob = json.dumps(docs, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- critical path -----------------------------------------------------
    def critical_path(self, root: Span) -> list[PathStep]:
        """Longest causal chain ending at ``root``'s end.

        Walks backwards from the root's end.  At each cursor position
        the predecessor is the child (or link target) of the current
        span with the latest end at or before the cursor; the uncovered
        remainder is the current span's exclusive time.  When no
        predecessor qualifies, the stretch back to the span's begin is
        exclusive and the walk *ascends* to the parent at that begin —
        so the chain crosses wire hops (via the reply spans'
        ``follows`` links) and continues through the request side all
        the way back to the client issue time."""
        if root.end is None:
            return []
        members = {
            s.span_id: s
            for s in self.spans
            if s.trace_id == root.trace_id
        }
        children: dict[int, list[Span]] = {}
        for s in members.values():
            if s.parent_id is not None and s.parent_id in members:
                children.setdefault(s.parent_id, []).append(s)

        def predecessors(span: Span) -> list[Span]:
            preds = list(children.get(span.span_id, []))
            for other_id, _kind in span.links:
                other = members.get(other_id)
                if other is not None:
                    preds.append(other)
            return preds

        steps: list[PathStep] = []
        span, cursor = root, root.end
        visited: set[int] = {root.span_id}
        while True:
            cands = [
                p for p in predecessors(span)
                if p.span_id not in visited
                and p.end is not None
                and p.end <= cursor + EPS
            ]
            if cands:
                pred = max(cands, key=lambda p: (p.end, p.span_id))
                steps.append(PathStep(span, pred.end, cursor))  # type: ignore[arg-type]
                span, cursor = pred, pred.end  # type: ignore[assignment]
                visited.add(span.span_id)
                continue
            begin = min(span.begin, cursor)
            steps.append(PathStep(span, begin, cursor))
            parent = (
                members.get(span.parent_id)
                if span.parent_id is not None else None
            )
            if parent is None:
                break
            span, cursor = parent, begin
        steps.reverse()
        return steps

    def critical_path_summary(self) -> dict[str, float]:
        """Mean exclusive seconds per span name along the critical path,
        averaged over every completed root trace."""
        totals: dict[str, float] = {}
        n = 0
        for root in self.roots():
            if root.end is None:
                continue
            n += 1
            for step in self.critical_path(root):
                totals[step.span.name] = (
                    totals.get(step.span.name, 0.0) + step.self_time
                )
        if n == 0:
            return {}
        return {name: t / n for name, t in sorted(totals.items())}

    # -- CPU cross-check ---------------------------------------------------
    def cpu_attribution(
        self, cpus: Optional[Iterable[str]] = None
    ) -> dict[str, float]:
        """Busy seconds per category from the charge-completion ledger,
        clipped to the report window."""
        start, end = self.window if self.window else (None, None)
        names = set(cpus) if cpus is not None else None
        out: dict[str, float] = {}
        for t, cpu_name, category, busy in self.cpu_samples:
            if start is not None and t <= start + EPS:
                continue
            if end is not None and t > end + EPS:
                continue
            if names is not None and cpu_name not in names:
                continue
            out[category] = out.get(category, 0.0) + busy
        return out

    def cpu_crosscheck(
        self, windows: Iterable[Any]
    ) -> dict[str, tuple[float, float]]:
        """Per-category (trace-attributed, sampler-measured) busy
        seconds over the same CPU complexes — the acceptance criterion
        is agreement within 5 % per category.

        ``windows`` are :class:`~repro.bench.metrics.CpuWindow` objects
        (their names identify the complexes to compare). A complex
        counts once even if several windows name it — baseline runs
        report the same host window as both the Ceph and the host
        view."""
        windows = list({w.name: w for w in windows}.values())
        names = {w.name for w in windows}
        traced = self.cpu_attribution(cpus=names)
        sampled: dict[str, float] = {}
        for w in windows:
            for category, busy in w.busy_by_category.items():
                sampled[category] = sampled.get(category, 0.0) + busy
        return {
            category: (traced.get(category, 0.0), sampled.get(category, 0.0))
            for category in sorted(set(traced) | set(sampled))
        }

    # -- exporters ---------------------------------------------------------
    def to_perfetto(self) -> dict[str, Any]:
        """Chrome/Perfetto trace-event JSON (load in ui.perfetto.dev).

        One process per node, one thread per simulated thread; spans are
        complete ("X") events in microseconds; links become flow
        ("s"/"f") events so send→recv and retry causality renders as
        arrows."""
        pids: dict[str, int] = {}
        tids: dict[tuple[str, str], int] = {}
        events: list[dict[str, Any]] = []

        def pid_of(node: str) -> int:
            if node not in pids:
                pids[node] = len(pids) + 1
                events.append({
                    "name": "process_name", "ph": "M", "pid": pids[node],
                    "args": {"name": node},
                })
            return pids[node]

        def tid_of(node: str, thread: str) -> int:
            key = (node, thread)
            if key not in tids:
                tids[key] = len(tids) + 1
                events.append({
                    "name": "thread_name", "ph": "M", "pid": pid_of(node),
                    "tid": tids[key], "args": {"name": thread},
                })
            return tids[key]

        span_pos: dict[int, tuple[int, int, float]] = {}
        for span in self.spans:
            pid = pid_of(span.node)
            tid = tid_of(span.node, span.thread)
            end = span.end if span.end is not None else span.begin
            args: dict[str, Any] = {
                "trace_id": f"{span.trace_id:016x}",
                "span_id": f"{span.span_id:016x}",
                "category": span.category,
                "cpu": span.cpu,
                "status": span.status,
            }
            if span.nbytes:
                args["nbytes"] = span.nbytes
            if span.tags:
                args.update({f"tag.{k}": v for k, v in span.tags.items()})
            if span.events:
                args["events"] = [
                    {"t_us": round(t * 1e6, 3), "name": name}
                    for t, name in span.events
                ]
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.begin * 1e6, 3),
                "dur": round((end - span.begin) * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            })
            span_pos[span.span_id] = (pid, tid, span.begin)

        flow_id = 0
        for span in self.spans:
            for other_id, kind in span.links:
                src = span_pos.get(other_id)
                if src is None:
                    continue
                flow_id += 1
                src_pid, src_tid, _ = src
                src_span = next(
                    (s for s in self.spans if s.span_id == other_id), None
                )
                src_ts = (
                    src_span.end if src_span is not None
                    and src_span.end is not None else span.begin
                )
                events.append({
                    "name": kind, "cat": "flow", "ph": "s", "id": flow_id,
                    "ts": round(src_ts * 1e6, 3),
                    "pid": src_pid, "tid": src_tid,
                })
                pid, tid, begin = span_pos[span.span_id]
                events.append({
                    "name": kind, "cat": "flow", "ph": "f", "bp": "e",
                    "id": flow_id, "ts": round(begin * 1e6, 3),
                    "pid": pid, "tid": tid,
                })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def flame_summary(self, limit: int = 20) -> str:
        """Text flame view: per span name, count, total/mean wall time,
        critical-path exclusive time, and bytes."""
        by_name: dict[str, list[Span]] = {}
        for span in self.spans:
            by_name.setdefault(span.name, []).append(span)
        crit = self.critical_path_summary()
        lines = [
            f"{'span':<26}{'count':>7}{'total_s':>10}{'mean_ms':>9}"
            f"{'crit_ms':>9}{'MB':>8}"
        ]
        rows = []
        for name, spans in by_name.items():
            finished = [s for s in spans if s.end is not None]
            total = sum(s.end - s.begin for s in finished)  # type: ignore[operator]
            mean = total / len(finished) if finished else 0.0
            nbytes = sum(s.nbytes for s in spans)
            rows.append((total, name, len(spans), mean, nbytes))
        rows.sort(reverse=True)
        for total, name, count, mean, nbytes in rows[:limit]:
            lines.append(
                f"{name:<26}{count:>7}{total:>10.3f}{mean * 1e3:>9.3f}"
                f"{crit.get(name, 0.0) * 1e3:>9.3f}{nbytes / 1e6:>8.1f}"
            )
        errors = sum(1 for s in self.spans if s.status == "error")
        open_spans = sum(1 for s in self.spans if s.end is None)
        lines.append(
            f"spans={len(self.spans)} traces={len(self.traces())}"
            f" errors={errors} unfinished={open_spans}"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """Machine-readable summary (what BENCH_*.json embeds)."""
        return {
            "spans": len(self.spans),
            "traces": len(self.traces()),
            "errors": sum(1 for s in self.spans if s.status == "error"),
            "unfinished": sum(1 for s in self.spans if s.end is None),
            "fingerprint": self.fingerprint(),
            "critical_path_mean_s": {
                name: round(t, 9)
                for name, t in self.critical_path_summary().items()
            },
            "cpu_by_category_s": {
                category: round(busy, 9)
                for category, busy in sorted(self.cpu_attribution().items())
            },
        }


def simulation_digest(env: Any) -> str:
    """Digest of a run's event-sequence identity.

    ``env._seq`` counts every event ever scheduled; together with the
    final clock it pins down the shape of the whole run — any extra
    timeout, process or charge introduced by tracing would change it.
    Used by the zero-perturbation tests and the CI trace-smoke job."""
    doc = {"seq": getattr(env, "_seq", None), "now": round(env.now, 9)}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
