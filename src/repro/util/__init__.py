"""Shared utilities: Ceph-compatible hashing, bufferlist encoding,
statistics accumulators, and deterministic RNG streams."""

from .bufferlist import BufferDecoder, BufferList, DataBlob, EncodeError
from .rjenkins import (
    ceph_str_hash_rjenkins,
    crush_hash32,
    crush_hash32_2,
    crush_hash32_3,
    crush_hash32_4,
)
from .rng import SeededRng
from .stats import Histogram, RunningStats, TimeSeries, percentile

__all__ = [
    "BufferDecoder",
    "BufferList",
    "DataBlob",
    "EncodeError",
    "Histogram",
    "RunningStats",
    "SeededRng",
    "TimeSeries",
    "ceph_str_hash_rjenkins",
    "crush_hash32",
    "crush_hash32_2",
    "crush_hash32_3",
    "crush_hash32_4",
    "percentile",
]
