"""Ceph-style bufferlist encoding.

Ceph serializes every message and every ObjectStore transaction into a
``bufferlist`` — an ordered list of buffer extents with little-endian
primitive encoders layered on top (``denc``).  This module reimplements
that idea with one twist needed for simulation scale:

Bulk payload data is represented by :class:`DataBlob` — a *virtual*
extent that has a length and an identity but no materialized bytes.
A 16 MB client write therefore costs a few dozen real bytes of metadata
plus one virtual extent, while every length/offset computation (and the
CPU-cost accounting derived from them) still sees the true sizes.

The encode format is self-describing enough for round-trips:

* primitives: little-endian fixed width (u8/u16/u32/u64/s64/f64)
* ``bytes`` / ``str``: u32 length prefix + raw bytes
* blob: appended as a raw virtual extent (callers encode its length
  themselves, exactly like Ceph encodes ``data_len`` in message headers)
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterator, Union

from ..sim.core import register_fresh_env_hook

__all__ = [
    "DataBlob",
    "BufferList",
    "BufferDecoder",
    "EncodeError",
    "reset_blob_ids",
]


class EncodeError(Exception):
    """Raised on malformed decode input or illegal encode arguments."""


_blob_counter = 0


def _next_blob_id() -> int:
    global _blob_counter
    _blob_counter += 1
    return _blob_counter


def reset_blob_ids() -> None:
    """Restart blob-id allocation from 1.

    Blob ids are only compared *within* one simulation; letting the
    counter leak across :class:`~repro.sim.core.Environment` instances
    made artifacts (and anything hashing blob ids) depend on how many
    simulations the process had already run.  Registered as a
    fresh-environment hook so every new ``Environment`` starts from a
    clean namespace.
    """
    global _blob_counter
    _blob_counter = 0


register_fresh_env_hook(reset_blob_ids)

#: encode_str memo: str -> length-prefixed utf-8 bytes (pure, capped).
_STR_CACHE: dict[str, bytes] = {}


@dataclass(frozen=True, slots=True)
class DataBlob:
    """A virtual bulk-data extent: identity + length, no materialized bytes.

    Two blobs compare equal only if they are the same logical data
    (same ``blob_id``).  ``slice`` produces derived blobs that keep the
    parent identity visible, which the DMA-segmentation code uses to
    verify that reassembled segments cover the original extent exactly.
    """

    length: int
    blob_id: int = field(default_factory=_next_blob_id)
    parent_id: int | None = None
    offset: int = 0

    def __post_init__(self) -> None:
        if self.length < 0:
            raise EncodeError(f"blob length must be >= 0, got {self.length}")

    def slice(self, offset: int, length: int) -> "DataBlob":
        """A sub-extent [offset, offset+length) of this blob."""
        if offset < 0 or length < 0 or offset + length > self.length:
            raise EncodeError(
                f"slice [{offset}, {offset + length}) out of bounds "
                f"for blob of length {self.length}"
            )
        root = self.parent_id if self.parent_id is not None else self.blob_id
        return DataBlob(
            length=length,
            parent_id=root,
            offset=self.offset + offset,
        )

    @property
    def root_id(self) -> int:
        """Identity of the original (unsliced) blob."""
        return self.parent_id if self.parent_id is not None else self.blob_id

    def __len__(self) -> int:
        return self.length


Extent = Union[bytes, DataBlob]


class BufferList:
    """An append-only list of real-byte and virtual-blob extents."""

    __slots__ = ("_extents", "_tail", "_length")

    def __init__(self) -> None:
        self._extents: list[Extent] = []
        self._tail: bytearray | None = None
        self._length = 0

    # -- sizes ---------------------------------------------------------------
    def __len__(self) -> int:
        """Total logical length: real bytes + virtual blob bytes."""
        return self._length

    @property
    def real_length(self) -> int:
        """Bytes that exist for real (metadata, headers)."""
        return sum(len(e) for e in self._flush() if isinstance(e, bytes))

    @property
    def virtual_length(self) -> int:
        """Bytes represented only as virtual blobs (bulk payload)."""
        return sum(e.length for e in self._flush() if isinstance(e, DataBlob))

    def extents(self) -> list[Extent]:
        """The extent list (bytes objects and DataBlobs, in order)."""
        return list(self._flush())

    def blobs(self) -> list[DataBlob]:
        """Just the virtual extents, in order."""
        return [e for e in self._flush() if isinstance(e, DataBlob)]

    # -- raw appends -----------------------------------------------------------
    def _raw(self, data: bytes) -> None:
        if self._tail is None:
            self._tail = bytearray()
        self._tail += data
        self._length += len(data)

    def _flush(self) -> list[Extent]:
        if self._tail is not None:
            self._extents.append(bytes(self._tail))
            self._tail = None
        return self._extents

    def append_raw(self, data: bytes) -> None:
        """Append already-encoded bytes verbatim (no length prefix).

        For reassembling a bufferlist extent-by-extent — e.g. the wire
        adversary rebuilding a frame with a mutated extent."""
        self._raw(data)

    def append_blob(self, blob: DataBlob) -> None:
        """Append a virtual bulk-data extent."""
        self._flush()
        self._extents.append(blob)
        self._length += blob.length

    def append_bufferlist(self, other: "BufferList") -> None:
        """Splice another bufferlist's extents onto this one."""
        for extent in other._flush():
            if isinstance(extent, DataBlob):
                self.append_blob(extent)
            else:
                self._raw(extent)

    # -- primitive encoders -------------------------------------------------
    # int.to_bytes beats struct.pack for fixed little-endian widths and
    # produces identical bytes (out-of-range values still raise, as
    # OverflowError rather than struct.error).
    def encode_u8(self, v: int) -> None:
        self._raw(v.to_bytes(1, "little"))

    def encode_u16(self, v: int) -> None:
        self._raw(v.to_bytes(2, "little"))

    def encode_u32(self, v: int) -> None:
        self._raw(v.to_bytes(4, "little"))

    def encode_u64(self, v: int) -> None:
        self._raw(v.to_bytes(8, "little"))

    def encode_s64(self, v: int) -> None:
        self._raw(v.to_bytes(8, "little", signed=True))

    def encode_f64(self, v: float) -> None:
        self._raw(struct.pack("<d", v))

    def encode_bool(self, v: bool) -> None:
        self._raw(b"\x01" if v else b"\x00")

    def encode_bytes(self, data: bytes) -> None:
        """u32 length prefix + raw bytes."""
        self._raw(len(data).to_bytes(4, "little") + data)

    def encode_str(self, s: str) -> None:
        # Message/op encoding re-emits a small vocabulary of strings
        # (object names, pool names, op types) millions of times; the
        # length-prefixed encoding is pure, so cache it.
        enc = _STR_CACHE.get(s)
        if enc is None:
            raw = s.encode("utf-8")
            enc = len(raw).to_bytes(4, "little") + raw
            if len(_STR_CACHE) < 4096:
                _STR_CACHE[s] = enc
        self._raw(enc)

    # -- integrity -------------------------------------------------------------
    def crc32(self) -> int:
        """CRC over real bytes, mixing in blob identities for virtual data.

        Good enough to detect reordering/corruption in tests; the *cost*
        of checksumming (which is what the CPU model charges) is always
        based on the full logical length.
        """
        crc = 0
        for extent in self._flush():
            if isinstance(extent, bytes):
                crc = zlib.crc32(extent, crc)
            else:
                tag = struct.pack(
                    "<QQQ", extent.root_id, extent.offset, extent.length
                )
                crc = zlib.crc32(tag, crc)
        return crc & 0xFFFFFFFF

    def decoder(self) -> "BufferDecoder":
        """A decoding cursor over this bufferlist."""
        return BufferDecoder(self._flush())

    def __repr__(self) -> str:
        return (
            f"<BufferList len={len(self)} real={self.real_length}"
            f" virtual={self.virtual_length}>"
        )


class BufferDecoder:
    """Sequential decoding cursor over a bufferlist's extents."""

    __slots__ = ("_extents", "_idx", "_pos")

    def __init__(self, extents: list[Extent]) -> None:
        self._extents = extents
        self._idx = 0
        self._pos = 0  # within current real extent

    def _current_bytes(self) -> bytes:
        while self._idx < len(self._extents):
            extent = self._extents[self._idx]
            if isinstance(extent, DataBlob):
                raise EncodeError(
                    "attempted to decode primitives out of a virtual blob"
                )
            if self._pos < len(extent):
                return extent
            self._idx += 1
            self._pos = 0
        raise EncodeError("decode past end of bufferlist")

    def _take(self, n: int) -> bytes:
        if n <= 0:
            return b""
        # Fast path: the whole read comes out of the current extent
        # (encoders coalesce adjacent primitives into one bytes object,
        # so this covers nearly every decode).
        cur = self._current_bytes()
        pos = self._pos
        end = pos + n
        if end <= len(cur):
            self._pos = end
            if end == len(cur):
                self._idx += 1
                self._pos = 0
            return cur[pos:end]
        out = bytearray()
        while n > 0:
            cur = self._current_bytes()
            avail = len(cur) - self._pos
            chunk = min(avail, n)
            out += cur[self._pos : self._pos + chunk]
            self._pos += chunk
            n -= chunk
            if self._pos >= len(cur):
                self._idx += 1
                self._pos = 0
        return bytes(out)

    # -- primitive decoders ----------------------------------------------------
    def decode_u8(self) -> int:
        return self._take(1)[0]

    def decode_u16(self) -> int:
        return int.from_bytes(self._take(2), "little")

    def decode_u32(self) -> int:
        return int.from_bytes(self._take(4), "little")

    def decode_u64(self) -> int:
        return int.from_bytes(self._take(8), "little")

    def decode_s64(self) -> int:
        return int.from_bytes(self._take(8), "little", signed=True)

    def decode_f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def decode_bool(self) -> bool:
        return self.decode_u8() != 0

    def decode_bytes(self) -> bytes:
        n = self.decode_u32()
        return self._take(n)

    def decode_str(self) -> str:
        return self.decode_bytes().decode("utf-8")

    def decode_blob(self) -> DataBlob:
        """Consume the next extent, which must be a virtual blob."""
        # Skip any exhausted real extent first.
        while (
            self._idx < len(self._extents)
            and isinstance(self._extents[self._idx], bytes)
            and self._pos >= len(self._extents[self._idx])  # type: ignore[arg-type]
        ):
            self._idx += 1
            self._pos = 0
        if self._idx >= len(self._extents):
            raise EncodeError("decode_blob past end of bufferlist")
        extent = self._extents[self._idx]
        if not isinstance(extent, DataBlob):
            raise EncodeError(
                f"expected a virtual blob, found {len(extent)} real bytes"
            )
        self._idx += 1
        self._pos = 0
        return extent

    def remaining_extents(self) -> Iterator[Extent]:
        """Iterate over whatever has not been consumed yet."""
        if self._idx < len(self._extents):
            first = self._extents[self._idx]
            if isinstance(first, bytes):
                if self._pos < len(first):
                    yield first[self._pos :]
            else:
                yield first
            yield from self._extents[self._idx + 1 :]
