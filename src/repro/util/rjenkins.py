"""Robert Jenkins' 32-bit integer hash, as used by Ceph's CRUSH.

This is a faithful Python port of ``crush/hash.c`` from the Ceph source
tree (the ``rjenkins1`` hash family).  CRUSH placement decisions and
object→PG hashing both build on these functions, so implementing them
exactly makes our placement behave like the real system's for identical
inputs.

Also included is ``ceph_str_hash_rjenkins`` (from ``common/ceph_hash.cc``),
the string hash Ceph applies to object names when mapping them to
placement-group seeds.
"""

from __future__ import annotations

__all__ = [
    "crush_hash32",
    "crush_hash32_2",
    "crush_hash32_3",
    "crush_hash32_4",
    "ceph_str_hash_rjenkins",
]

_M32 = 0xFFFFFFFF

#: Seed constant from crush/hash.c
CRUSH_HASH_SEED = 1315423911


def _mix(a: int, b: int, c: int) -> tuple[int, int, int]:
    """One round of the Jenkins 96-bit mix function (32-bit wrapping)."""
    a = (a - b) & _M32
    a = (a - c) & _M32
    a ^= c >> 13
    b = (b - c) & _M32
    b = (b - a) & _M32
    b ^= (a << 8) & _M32
    c = (c - a) & _M32
    c = (c - b) & _M32
    c ^= b >> 13
    a = (a - b) & _M32
    a = (a - c) & _M32
    a ^= c >> 12
    b = (b - c) & _M32
    b = (b - a) & _M32
    b ^= (a << 16) & _M32
    c = (c - a) & _M32
    c = (c - b) & _M32
    c ^= b >> 5
    a = (a - b) & _M32
    a = (a - c) & _M32
    a ^= c >> 3
    b = (b - c) & _M32
    b = (b - a) & _M32
    b ^= (a << 10) & _M32
    c = (c - a) & _M32
    c = (c - b) & _M32
    c ^= b >> 15
    return a, b, c


def crush_hash32(a: int) -> int:
    """Hash one 32-bit value."""
    a &= _M32
    h = (CRUSH_HASH_SEED ^ a) & _M32
    b = a
    x, y = 231232, 1232
    b, x, h = _mix(b, x, h)
    y, a, h = _mix(y, a, h)
    return h


def crush_hash32_2(a: int, b: int) -> int:
    """Hash two 32-bit values."""
    a &= _M32
    b &= _M32
    h = (CRUSH_HASH_SEED ^ a ^ b) & _M32
    x, y = 231232, 1232
    a, b, h = _mix(a, b, h)
    x, a, h = _mix(x, a, h)
    b, y, h = _mix(b, y, h)
    return h


def crush_hash32_3(a: int, b: int, c: int) -> int:
    """Hash three 32-bit values (the straw2 draw hash)."""
    a &= _M32
    b &= _M32
    c &= _M32
    h = (CRUSH_HASH_SEED ^ a ^ b ^ c) & _M32
    x, y = 231232, 1232
    a, b, h = _mix(a, b, h)
    c, x, h = _mix(c, x, h)
    y, a, h = _mix(y, a, h)
    b, x, h = _mix(b, x, h)
    y, c, h = _mix(y, c, h)
    return h


def crush_hash32_4(a: int, b: int, c: int, d: int) -> int:
    """Hash four 32-bit values."""
    a &= _M32
    b &= _M32
    c &= _M32
    d &= _M32
    h = (CRUSH_HASH_SEED ^ a ^ b ^ c ^ d) & _M32
    x, y = 231232, 1232
    a, b, h = _mix(a, b, h)
    c, d, h = _mix(c, d, h)
    a, x, h = _mix(a, x, h)
    y, b, h = _mix(y, b, h)
    c, x, h = _mix(c, x, h)
    y, d, h = _mix(y, d, h)
    return h


def ceph_str_hash_rjenkins(data: bytes | str) -> int:
    """Ceph's rjenkins string hash (``common/ceph_hash.cc``).

    Used to map object names to PG seeds.  Accepts ``str`` (encoded as
    UTF-8) or raw ``bytes``.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    length = len(data)
    a = 0x9E3779B9
    b = a
    c = 0  # initval

    pos = 0
    while length >= 12:
        a = (
            a
            + data[pos]
            + (data[pos + 1] << 8)
            + (data[pos + 2] << 16)
            + (data[pos + 3] << 24)
        ) & _M32
        b = (
            b
            + data[pos + 4]
            + (data[pos + 5] << 8)
            + (data[pos + 6] << 16)
            + (data[pos + 7] << 24)
        ) & _M32
        c = (
            c
            + data[pos + 8]
            + (data[pos + 9] << 8)
            + (data[pos + 10] << 16)
            + (data[pos + 11] << 24)
        ) & _M32
        a, b, c = _mix(a, b, c)
        pos += 12
        length -= 12

    c = (c + len(data)) & _M32
    # Tail bytes — note the deliberate skip of byte offset +8 for c
    # (it holds the length), matching the original C switch fall-through.
    if length >= 11:
        c = (c + (data[pos + 10] << 24)) & _M32
    if length >= 10:
        c = (c + (data[pos + 9] << 16)) & _M32
    if length >= 9:
        c = (c + (data[pos + 8] << 8)) & _M32
    if length >= 8:
        b = (b + (data[pos + 7] << 24)) & _M32
    if length >= 7:
        b = (b + (data[pos + 6] << 16)) & _M32
    if length >= 6:
        b = (b + (data[pos + 5] << 8)) & _M32
    if length >= 5:
        b = (b + data[pos + 4]) & _M32
    if length >= 4:
        a = (a + (data[pos + 3] << 24)) & _M32
    if length >= 3:
        a = (a + (data[pos + 2] << 16)) & _M32
    if length >= 2:
        a = (a + (data[pos + 1] << 8)) & _M32
    if length >= 1:
        a = (a + data[pos]) & _M32

    a, b, c = _mix(a, b, c)
    return c
