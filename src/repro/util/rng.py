"""Deterministic random-number utilities.

All stochastic behaviour in the simulation (workload think times, fault
injection, jitter) flows through :class:`SeededRng` streams derived from
one master seed, so experiments are bit-reproducible and sub-streams are
independent of module import order.
"""

from __future__ import annotations

import random

__all__ = ["SeededRng"]


class SeededRng:
    """A named tree of deterministic random streams.

    ``SeededRng(42).stream("clients")`` always yields the same sequence
    regardless of how many other streams exist or the order in which they
    are created.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created deterministically on demand)."""
        rng = self._streams.get(name)
        if rng is None:
            # Derive the child seed from (master seed, name) only.
            child_seed = hash_combine(self.seed, name)
            rng = self._streams[name] = random.Random(child_seed)
        return rng

    def child(self, name: str) -> "SeededRng":
        """A derived :class:`SeededRng` rooted at (seed, name)."""
        return SeededRng(hash_combine(self.seed, name))


def hash_combine(seed: int, name: str) -> int:
    """Stable (cross-process) combination of a seed and a stream name."""
    acc = seed & 0xFFFFFFFFFFFFFFFF
    for ch in name.encode("utf-8"):
        acc = (acc * 1099511628211) & 0xFFFFFFFFFFFFFFFF  # FNV-1a style
        acc ^= ch
    return acc
