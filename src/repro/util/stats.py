"""Lightweight statistics helpers: online accumulators, histograms,
per-second time series.

These are used by the benchmark harness (RADOS bench instrumentation,
CPU utilization sampling) and by the DoCeph latency-breakdown
instrumentation that regenerates Table 3 / Figure 9.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = ["RunningStats", "Histogram", "TimeSeries", "percentile",
           "jain_fairness_index"]


def jain_fairness_index(values: list[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``.

    1.0 when every tenant gets an equal share, → 1/n as one tenant
    hogs everything.  For QoS we feed *normalized* allocations (e.g.
    goodput / weight), so 1.0 means "fair per the configured shares".
    Empty or all-zero input returns 1.0 (nothing to be unfair about).
    """
    if not values:
        return 1.0
    total = sum(values)
    square_sum = sum(v * v for v in values)
    if square_sum <= 0.0:
        return 1.0
    return (total * total) / (len(values) * square_sum)


def percentile(sorted_values: list[float], p: float) -> float:
    """Linear-interpolated percentile of an already-sorted list.

    ``p`` is in [0, 100].  Matches numpy's default ("linear") method so
    downstream tables agree with numpy-based analysis.
    """
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return sorted_values[lo]
    frac = rank - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


class RunningStats:
    """Welford online mean/variance plus min/max and sum."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Accumulate one observation."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel Welford)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total_n = n1 + n2
        self._m2 = self._m2 + other._m2 + delta * delta * n1 * n2 / total_n
        self._mean = (n1 * self._mean + n2 * other._mean) / total_n
        self.count = total_n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:
        return (
            f"<RunningStats n={self.count} mean={self.mean:.6g}"
            f" sd={self.stddev:.6g} min={self.min:.6g} max={self.max:.6g}>"
        )


class Histogram:
    """Fixed-boundary histogram with exact-value retention up to a cap.

    Retains raw values (for exact percentiles) until ``max_raw`` samples,
    after which only bucket counts are maintained.  Bucket boundaries are
    the upper edges; a value lands in the first bucket whose edge is >= it.
    """

    def __init__(self, boundaries: list[float], max_raw: int = 100_000) -> None:
        if boundaries != sorted(boundaries):
            raise ValueError("histogram boundaries must be sorted")
        if not boundaries:
            raise ValueError("histogram needs at least one boundary")
        self.boundaries = list(boundaries)
        self.counts = [0] * (len(boundaries) + 1)  # +1 overflow bucket
        self.stats = RunningStats()
        self._raw: list[float] | None = []
        self._max_raw = max_raw

    def add(self, value: float) -> None:
        # A value equal to a boundary belongs to that boundary's bucket,
        # hence bisect_left rather than bisect_right.
        idx = bisect_left(self.boundaries, value)
        self.counts[idx] += 1
        self.stats.add(value)
        if self._raw is not None:
            self._raw.append(value)
            if len(self._raw) > self._max_raw:
                self._raw = None

    @property
    def count(self) -> int:
        return self.stats.count

    def percentile(self, p: float) -> float:
        """Exact if raw values retained, else bucket-edge approximation."""
        if self.stats.count == 0:
            raise ValueError("percentile of empty histogram")
        if self._raw is not None:
            return percentile(sorted(self._raw), p)
        target = (p / 100.0) * self.stats.count
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                if i < len(self.boundaries):
                    return self.boundaries[i]
                return self.stats.max
        return self.stats.max

    @staticmethod
    def exponential(start: float, factor: float, count: int) -> "Histogram":
        """Histogram with geometrically growing bucket edges."""
        if start <= 0 or factor <= 1 or count < 1:
            raise ValueError("need start>0, factor>1, count>=1")
        edges = [start * factor**i for i in range(count)]
        return Histogram(edges)


@dataclass
class TimeSeries:
    """Per-interval accumulation of a metric (e.g. per-second IOPS).

    ``interval`` is the bucket width in simulated seconds.  Values added
    at time ``t`` accumulate into bucket ``floor(t / interval)``.
    """

    interval: float = 1.0
    _buckets: dict[int, RunningStats] = field(default_factory=dict)

    def add(self, t: float, value: float) -> None:
        idx = int(t // self.interval)
        bucket = self._buckets.get(idx)
        if bucket is None:
            bucket = self._buckets[idx] = RunningStats()
        bucket.add(value)

    def buckets(self) -> list[tuple[float, RunningStats]]:
        """(bucket start time, accumulator) pairs in time order."""
        return [
            (idx * self.interval, self._buckets[idx])
            for idx in sorted(self._buckets)
        ]

    def sums(self) -> list[tuple[float, float]]:
        return [(t, s.total) for t, s in self.buckets()]

    def means(self) -> list[tuple[float, float]]:
        return [(t, s.mean) for t, s in self.buckets()]

    def counts(self) -> list[tuple[float, int]]:
        return [(t, s.count) for t, s in self.buckets()]
