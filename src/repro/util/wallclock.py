"""Injectable wall-clock and host-environment accessor.

The simulator's determinism contract says *model* code never reads the
host: ``env.now`` is the only clock and :class:`~repro.util.rng.SeededRng`
the only randomness.  Two harness concerns legitimately need the host,
though — measuring how fast the *engine* runs (wall-clock seconds per
simulated second) and reading opt-in configuration from the process
environment.  This module is the single place both are allowed:

* :func:`perf_counter` — monotonic wall-clock read for engine-speed
  metrics.  Swappable via :func:`set_perf_counter` so tests can freeze
  or script it.
* :func:`getenv` — environment-variable read.  Swappable via
  :func:`set_env_reader` so tests can inject a fixed environment.

``repro.lint``'s wall-clock rule (DET101) and env-read rule (DET106)
ban direct ``time``/``os.environ`` access everywhere else, so every
host read in the tree is forced through these two functions and can be
stubbed in one move.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

__all__ = [
    "perf_counter",
    "getenv",
    "set_perf_counter",
    "set_env_reader",
    "reset",
]

# The injectable sources.  Module-level indirection (rather than a
# class) keeps the hot read to one global load + one call.
_perf_counter: Callable[[], float] = time.perf_counter
_env_reader: Callable[[str], Optional[str]] = os.environ.get


def perf_counter() -> float:
    """Monotonic wall-clock seconds (engine-speed measurement only).

    Never feed this into simulated behavior: wall time must only ever
    appear in ``wall_s``/``wall_clock_s``-style observability fields
    that determinism comparisons ignore.
    """
    return _perf_counter()


def getenv(name: str, default: Optional[str] = None) -> Optional[str]:
    """Read one process environment variable through the injection point."""
    value = _env_reader(name)
    return default if value is None else value


def set_perf_counter(source: Callable[[], float]) -> Callable[[], float]:
    """Replace the wall-clock source; returns the previous one."""
    global _perf_counter
    previous, _perf_counter = _perf_counter, source
    return previous


def set_env_reader(
    reader: Callable[[str], Optional[str]],
) -> Callable[[str], Optional[str]]:
    """Replace the environment reader; returns the previous one."""
    global _env_reader
    previous, _env_reader = _env_reader, reader
    return previous


def reset() -> None:
    """Restore the real host clock and environment."""
    global _perf_counter, _env_reader
    _perf_counter = time.perf_counter
    _env_reader = os.environ.get
