"""Shared fixtures for the test suite."""

import pytest

from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()
