"""Helper factories shared across test modules."""

from repro.hw import CpuComplex, Network, Nic, TcpStackModel
from repro.hw.node import NetStack
from repro.sim import Environment


def make_stack(
    env: Environment,
    network: Network,
    address: str,
    cores: int = 4,
    perf: float = 1.0,
    bandwidth_bps: float = 100e9,
    tcp: TcpStackModel | None = None,
) -> NetStack:
    """Build a CPU+NIC endpoint attached to ``network``."""
    cpu = CpuComplex(env, f"{address}.cpu", cores=cores, perf=perf)
    nic = Nic(env, f"{address}.nic", bandwidth_bps=bandwidth_bps)
    network.attach(address, nic)
    return NetStack(
        cpu=cpu,
        nic=nic,
        network=network,
        address=address,
        tcp=tcp or TcpStackModel(),
    )
