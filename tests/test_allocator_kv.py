"""Tests for the bitmap allocator and the embedded KV store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objectstore import BitmapAllocator, Extent, KVStore, WriteBatch
from repro.objectstore.bluestore.allocator import AllocError


UNIT = 4096


def make_alloc(blocks=64):
    return BitmapAllocator(blocks * UNIT, alloc_unit=UNIT)


# ---------------------------------------------------------------- allocator


def test_simple_allocate_free_cycle():
    a = make_alloc()
    extents = a.allocate(3 * UNIT)
    assert sum(e.length for e in extents) == 3 * UNIT
    assert a.used_bytes == 3 * UNIT
    a.free(extents)
    assert a.used_bytes == 0
    assert a.free_bytes == a.capacity


def test_allocation_rounds_up_to_blocks():
    a = make_alloc()
    extents = a.allocate(100)  # < 1 block
    assert sum(e.length for e in extents) == UNIT


def test_out_of_space():
    a = make_alloc(blocks=4)
    a.allocate(4 * UNIT)
    with pytest.raises(AllocError, match="out of space"):
        a.allocate(UNIT)


def test_fragmented_allocation_spans_extents():
    a = make_alloc(blocks=8)
    first = a.allocate(8 * UNIT)
    a.free([Extent(1 * UNIT, UNIT)])
    a.free([Extent(3 * UNIT, UNIT)])
    a.free([Extent(5 * UNIT, UNIT)])
    extents = a.allocate(3 * UNIT)
    assert sum(e.length for e in extents) == 3 * UNIT
    assert len(extents) == 3  # necessarily fragmented
    assert a.free_bytes == 0


def test_double_free_detected():
    a = make_alloc()
    extents = a.allocate(UNIT)
    a.free(extents)
    with pytest.raises(AllocError, match="double free"):
        a.free(extents)


def test_misaligned_and_out_of_range_free():
    a = make_alloc(blocks=4)
    with pytest.raises(AllocError, match="misaligned"):
        a.free([Extent(100, UNIT)])
    with pytest.raises(AllocError, match="range"):
        a.free([Extent(10 * UNIT, UNIT)])


def test_invalid_construction_and_sizes():
    with pytest.raises(AllocError):
        BitmapAllocator(0)
    with pytest.raises(AllocError):
        BitmapAllocator(100, alloc_unit=64)  # not a multiple
    a = make_alloc()
    with pytest.raises(AllocError):
        a.allocate(0)


def test_hint_advances_round_robin():
    """Sequential allocations lay out contiguously (first-fit + hint)."""
    a = make_alloc(blocks=16)
    e1 = a.allocate(4 * UNIT)
    e2 = a.allocate(4 * UNIT)
    assert e1[0].offset + e1[0].length == e2[0].offset


def test_fragmentation_score():
    a = make_alloc(blocks=8)
    assert a.fragmentation() == 0.0
    a.allocate(8 * UNIT)
    a.free([Extent(0, UNIT), Extent(4 * UNIT, UNIT)])
    assert a.fragmentation() > 0.0


@given(
    requests=st.lists(st.integers(min_value=1, max_value=10 * UNIT),
                      min_size=1, max_size=30)
)
@settings(max_examples=100)
def test_allocator_conservation_property(requests):
    """free + used == capacity at every step; freeing everything
    restores a pristine allocator."""
    a = BitmapAllocator(256 * UNIT, alloc_unit=UNIT)
    live = []
    for i, size in enumerate(requests):
        try:
            extents = a.allocate(size)
        except AllocError:
            break
        live.append(extents)
        assert a.free_bytes + a.used_bytes == a.capacity
        # no extent overlap
        spans = sorted(
            (e.offset, e.offset + e.length) for ext in live for e in ext
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        if i % 3 == 2:  # free oldest to create fragmentation
            a.free(live.pop(0))
    for extents in live:
        a.free(extents)
    assert a.free_bytes == a.capacity
    assert a.fragmentation() == 0.0


# ---------------------------------------------------------------- kv store


def test_kv_put_get_delete():
    kv = KVStore()
    kv.put("a", b"1")
    assert kv.get("a") == b"1"
    assert "a" in kv
    kv.delete("a")
    assert kv.get("a") is None
    assert len(kv) == 0


def test_kv_batch_atomic_and_size():
    kv = KVStore()
    batch = WriteBatch().put("x", b"xx").put("y", b"yy").delete("ghost")
    size = kv.commit(batch)
    assert size == batch.size_bytes > 0
    assert kv.get("x") == b"xx"
    assert kv.batches_committed == 1
    assert kv.bytes_logged == size


def test_kv_overwrite_keeps_single_key():
    kv = KVStore()
    kv.put("k", b"1")
    kv.put("k", b"2")
    assert kv.get("k") == b"2"
    assert len(kv) == 1


def test_kv_prefix_iteration_ordered():
    kv = KVStore()
    for key in ["O/pg1/b", "O/pg1/a", "O/pg2/z", "M/meta"]:
        kv.put(key, b"")
    got = [k for k, _ in kv.iterate_prefix("O/pg1/")]
    assert got == ["O/pg1/a", "O/pg1/b"]
    assert list(kv.iterate_prefix("ZZZ")) == []


def test_kv_delete_missing_is_noop():
    kv = KVStore()
    kv.delete("missing")
    assert len(kv) == 0


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "delete"]),
                  st.text(min_size=1, max_size=8),
                  st.binary(max_size=16)),
        max_size=60,
    )
)
@settings(max_examples=100)
def test_kv_matches_dict_semantics(ops):
    kv = KVStore()
    model = {}
    for op, key, value in ops:
        if op == "put":
            kv.put(key, value)
            model[key] = value
        else:
            kv.delete(key)
            model.pop(key, None)
    assert len(kv) == len(model)
    for key, value in model.items():
        assert kv.get(key) == value
    # full iteration equals sorted model
    assert [k for k, _ in kv.iterate_prefix("")] == sorted(model)
