"""Tests for the benchmark harness: CPU windows/sampler, report
rendering, and the experiment drivers' reference data."""

import pytest

from repro.bench import (
    CpuSampler,
    CpuWindow,
    MB,
    PAPER,
    SIZES,
    format_table,
    run_rados_bench,
)
from repro.bench.experiments import Table3Row
from repro.cluster import build_baseline_cluster
from repro.hw import CpuComplex, SimThread
from repro.sim import Environment


# ---------------------------------------------------------------- CpuWindow


def make_busy_cpu(env, spec):
    """spec: {category: busy_seconds} charged sequentially."""
    cpu = CpuComplex(env, "c", cores=4)

    def proc():
        for cat, amount in spec.items():
            t = SimThread(cpu, f"{cat}-t", cat)
            yield from t.charge(amount)

    env.process(proc())
    env.run()
    return cpu


def test_cpu_window_between_snapshots():
    env = Environment()
    cpu = make_busy_cpu(env, {"msgr-worker": 2.0, "bstore": 0.5})
    start = CpuWindow.between(
        cpu,
        cpu.accounting.snapshot(0.0).__class__(
            time=0.0, busy_by_category={}, ctx_by_category={}
        ),
        cpu.accounting.snapshot(env.now),
    )
    assert start.elapsed == pytest.approx(2.5)
    assert start.total_busy == pytest.approx(2.5)
    assert start.busy_cores == pytest.approx(1.0)
    assert start.utilization_pct == pytest.approx(100.0)
    assert start.category_share("msgr-worker") == pytest.approx(0.8)
    assert start.breakdown()["bstore"] == pytest.approx(0.2)


def test_cpu_window_empty():
    w = CpuWindow("x", elapsed=0.0, busy_by_category={}, ctx_by_category={})
    assert w.busy_cores == 0.0
    assert w.category_share("anything") == 0.0
    assert w.breakdown() == {}
    assert w.ctx_rate("x") == 0.0


def test_cpu_window_merge_averages():
    a = CpuWindow("a", 10.0, {"msgr-worker": 5.0}, {"msgr-worker": 100})
    b = CpuWindow("b", 10.0, {"msgr-worker": 3.0, "bstore": 1.0},
                  {"msgr-worker": 50})
    merged = CpuWindow.merge([a, b])
    assert merged.busy_by_category["msgr-worker"] == pytest.approx(4.0)
    assert merged.busy_by_category["bstore"] == pytest.approx(0.5)
    assert merged.ctx_by_category["msgr-worker"] == 75
    with pytest.raises(ValueError):
        CpuWindow.merge([])


def test_cpu_sampler_collects_per_second_series():
    env = Environment()
    cpu = CpuComplex(env, "c", cores=2)
    thread = SimThread(cpu, "t", "cat")

    def worker():
        while True:
            yield from thread.charge(0.5)
            yield env.timeout(0.5)

    env.process(worker())
    sampler = CpuSampler(env, [cpu], period=1.0)
    sampler.start()
    env.run(until=5.5)
    windows = sampler.stop()
    samples = sampler.samples["c"]
    assert len(samples) == 5
    # 0.5 busy core per second → 50 % single-core-normalized
    for s in samples:
        assert s == pytest.approx(50.0, abs=2.0)
    # the full-window figure is slightly under 50 % because the charge
    # in flight at the cut-off accounts only at completion
    assert windows[0].utilization_pct == pytest.approx(50.0, abs=6.0)


def test_cpu_sampler_stop_before_start():
    env = Environment()
    sampler = CpuSampler(env, [])
    with pytest.raises(RuntimeError):
        sampler.stop()


# ---------------------------------------------------------------- reporting


def test_format_table_alignment():
    text = format_table(["a", "long-header"], [[1, 2], ["wide-cell", 3]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long-header" in lines[1]
    # all rows have equal rendered width
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_table3_row_normalization():
    row = Table3Row(object_size=MB, host_write=0.01, dma=0.01,
                    dma_wait=0.02, others=0.06, total=0.1)
    n = row.normalized()
    assert n["host_write"] == pytest.approx(0.1)
    assert n["dma_wait"] == pytest.approx(0.2)
    assert sum(n.values()) == pytest.approx(1.0)
    zero = Table3Row(object_size=MB, host_write=0, dma=0, dma_wait=0,
                     others=0, total=0)
    assert zero.normalized()["others"] == 0


# ---------------------------------------------------------------- PAPER data


def test_paper_reference_tables_are_consistent():
    """Sanity-check the transcribed reference values."""
    assert set(PAPER["fig7_baseline_cpu_pct"]) == set(SIZES)
    assert set(PAPER["fig10_doceph_iops"]) == set(SIZES)
    for size in SIZES:
        t3 = PAPER["table3"][size]
        # components sum approximately to the total (paper rounding)
        s = t3["host_write"] + t3["dma"] + t3["dma_wait"] + t3["others"]
        assert s == pytest.approx(t3["total"], rel=0.06)
        # baseline beats DoCeph in IOPS everywhere
        assert (PAPER["fig10_baseline_iops"][size]
                >= PAPER["fig10_doceph_iops"][size])
        # DoCeph's CPU is always far below baseline's
        assert (PAPER["fig7_doceph_cpu_pct"][size]
                < 0.1 * PAPER["fig7_baseline_cpu_pct"][size])


def test_paper_ctx_ratio_close_to_ten():
    ctx = PAPER["table2_ctx"]
    assert ctx["messenger"] / ctx["objectstore"] == pytest.approx(9.95, abs=0.05)


# ---------------------------------------------------------------- radosbench


def test_run_rados_bench_result_consistency():
    env = Environment()
    cluster = build_baseline_cluster(env)
    r = run_rados_bench(cluster, object_size=1 * MB, clients=4,
                        duration=3.0, warmup=1.0)
    assert r.completed_ops == len(r.latencies)
    assert r.completed_ops > 0
    # throughput/iops relationship
    assert r.throughput_bytes == pytest.approx(r.iops * r.object_size)
    # latency stats agree with the raw list
    assert r.avg_latency == pytest.approx(
        sum(r.latencies) / len(r.latencies)
    )
    assert r.latency_percentile(0) == pytest.approx(min(r.latencies))
    assert r.latency_percentile(100) == pytest.approx(max(r.latencies))
    # per-second op counts sum to completed ops
    total_per_second = sum(v for _, v in r.per_second_ops.sums())
    assert total_per_second == r.completed_ops
    # cpu windows exist for both storage nodes
    assert len(r.host_cpu) == 2
    assert r.host_utilization_pct > 0


def test_bench_rejects_unknown_op():
    env = Environment()
    cluster = build_baseline_cluster(env)
    with pytest.raises(ValueError):
        run_rados_bench(cluster, object_size=MB, clients=1, duration=1.0,
                        warmup=0.1, op="scribble")


def test_randread_and_mixed_ops():
    def run(op):
        env = Environment()
        cluster = build_baseline_cluster(env)
        return run_rados_bench(
            cluster, object_size=256 * 1024, clients=2, duration=2.0,
            warmup=0.5, op=op, read_ratio=0.5, prepopulate=8, seed=4,
        )

    for op in ("randread", "mixed"):
        r = run(op)
        assert r.completed_ops > 0
        assert r.completed_ops == len(r.latencies)
        # same seed => identical op sequence and results
        again = run(op)
        assert again.completed_ops == r.completed_ops
        assert again.latencies == r.latencies


# ---------------------------------------------------------------- schema


def test_bench_schema_accepts_canonical_dict():
    from repro.bench import bench_result_dict
    from repro.bench.schema import validate_bench_result, validate_payload

    env = Environment()
    cluster = build_baseline_cluster(env)
    r = run_rados_bench(cluster, object_size=1 * MB, clients=2,
                        duration=2.0, warmup=0.5)
    d = bench_result_dict(r)
    validate_bench_result(d)  # must not raise
    assert validate_payload({"points": [{"baseline": d}]}) == 1


def test_bench_schema_rejects_drift():
    from repro.bench.schema import SchemaError, validate_bench_result

    good = {
        "object_size": 4096, "clients": 1, "duration_s": 1.0,
        "iops": 10.0, "throughput_MBps": 0.04, "completed_ops": 10,
        "latency_s": {"mean": 0.1, "p50": 0.1, "p90": 0.1, "p99": 0.1,
                      "max": 0.1},
        "cpu": {"host_utilization_pct": 5.0},
    }
    validate_bench_result(good)
    for mutant, msg in (
        ({**good, "latency_s": {**good["latency_s"], "p95": 0.1}},
         "unknown latency key"),
        ({**good, "iops": "fast"}, "wrong type"),
        ({k: v for k, v in good.items() if k != "completed_ops"},
         "missing key"),
        ({**good, "engine": {"wall_clock_s": 1.0}},
         "engine present but incomplete"),
    ):
        with pytest.raises(SchemaError):
            validate_bench_result(mutant)


def test_write_bench_json_validates_payload(tmp_path):
    from repro.bench import write_bench_json
    from repro.bench.schema import SchemaError

    bad = {"points": [{"baseline": {"iops": 1.0, "latency_s": {}}}]}
    with pytest.raises(SchemaError):
        write_bench_json("nope", bad, out_dir=tmp_path)
    assert not list(tmp_path.iterdir())


def test_committed_artifacts_pass_schema():
    import json
    import pathlib

    from repro.bench.schema import validate_payload

    results = pathlib.Path("benchmarks/results")
    checked = 0
    for path in sorted(results.glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        checked += validate_payload(payload)
    assert checked >= 10  # every committed bench block is schema-clean
