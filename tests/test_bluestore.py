"""Tests for transactions and the BlueStore backend."""

import pytest

from repro.hw import CpuComplex, SimThread, SsdDevice
from repro.objectstore import (
    BlueStore,
    BlueStoreConfig,
    BSTORE_CATEGORY,
    NoSuchObject,
    StoreError,
    Transaction,
)
from repro.sim import Environment
from repro.util import DataBlob


def make_store(env=None, **cfg_kwargs):
    env = env or Environment()
    cpu = CpuComplex(env, "host", cores=4)
    ssd = SsdDevice(env, "ssd", write_bandwidth=1e9, write_latency=50e-6)
    cfg = BlueStoreConfig(device_capacity=1 << 30, **cfg_kwargs)
    store = BlueStore(env, "bs", cpu, ssd, cfg)
    store.mkfs()
    store.create_collection_sync("pg1")
    thread = SimThread(cpu, "tp_osd_tp-0", "tp_osd_tp")
    return env, store, thread


# ---------------------------------------------------------------- transaction


def test_transaction_builders_and_sizes():
    blob = DataBlob(1 << 20)
    txn = (
        Transaction()
        .touch("pg1", "a")
        .write("pg1", "a", 0, blob.length, blob)
        .setattr("pg1", "a", "k", b"v")
    )
    assert txn.num_ops == 3
    assert txn.data_len == 1 << 20
    assert txn.data_blobs() == [blob]


def test_transaction_write_length_mismatch():
    with pytest.raises(StoreError):
        Transaction().write("pg1", "a", 0, 100, DataBlob(50))


def test_transaction_encode_decode_roundtrip():
    blob = DataBlob(4096)
    txn = (
        Transaction()
        .create_collection("pg2")
        .write("pg2", "obj", 0, 4096, blob)
        .omap_set("pg2", "obj", "key", b"val")
        .truncate("pg2", "obj", 100)
        .remove("pg2", "gone")
    )
    out = Transaction.decode(txn.encode().decoder())
    assert out == txn


# ---------------------------------------------------------------- bluestore


def run_txn(env, store, thread, txn):
    def proc():
        yield from store.queue_transaction(txn, thread)
        return env.now

    p = env.process(proc())
    env.run(until=p)
    assert p.triggered, "transaction never committed"
    return p.value


def test_write_commits_and_updates_onode():
    env, store, thread = make_store()
    blob = DataBlob(1 << 20)
    txn = Transaction().write("pg1", "obj", 0, blob.length, blob)
    t_commit = run_txn(env, store, thread, txn)
    assert t_commit > 0
    assert store.txns_committed == 1
    assert store.bytes_committed == 1 << 20

    def check():
        st = yield from store.stat("pg1", "obj", thread)
        return st

    p = env.process(check())
    env.run(until=20.0)
    assert p.value.size == 1 << 20
    assert p.value.version == 1


def test_large_write_hits_data_device_before_commit():
    env, store, thread = make_store()
    blob = DataBlob(4 << 20)
    run_txn(env, store, thread,
            Transaction().write("pg1", "obj", 0, blob.length, blob))
    # direct write + WAL flush both hit the SSD
    assert store.ssd.bytes_written > 4 << 20
    assert store.deferred_txns == 0


def test_small_write_takes_deferred_path():
    env, store, thread = make_store()
    blob = DataBlob(4096)
    run_txn(env, store, thread,
            Transaction().write("pg1", "obj", 0, blob.length, blob))
    assert store.deferred_txns == 1
    env.run(until=30.0)  # deferred apply drains
    # WAL (incl. data) + deferred apply
    assert store.ssd.bytes_written >= 2 * 4096


def test_write_allocates_and_remove_frees():
    env, store, thread = make_store()
    blob = DataBlob(1 << 20)
    run_txn(env, store, thread,
            Transaction().write("pg1", "obj", 0, blob.length, blob))
    used_after_write = store.allocator.used_bytes
    assert used_after_write >= 1 << 20

    run_txn(env, store, thread, Transaction().remove("pg1", "obj"))
    assert store.allocator.used_bytes == 0

    def check():
        ok = yield from store.exists("pg1", "obj", thread)
        return ok

    p = env.process(check())
    env.run(until=60.0)
    assert p.value is False


def test_overwrite_does_not_leak_space():
    env, store, thread = make_store()
    blob = DataBlob(1 << 20)
    for _ in range(3):
        run_txn(env, store, thread,
                Transaction().write("pg1", "obj", 0, blob.length, blob))
    # same extent reused: allocation happened once
    onode = store.collections["pg1"]["obj"]
    assert onode.allocated == store.allocator.used_bytes
    assert onode.version == 3


def test_cpu_charged_to_bstore_category():
    env, store, thread = make_store()
    blob = DataBlob(8 << 20)
    run_txn(env, store, thread,
            Transaction().write("pg1", "obj", 0, blob.length, blob))
    busy = store.cpu.accounting.busy_by_category
    assert busy.get(BSTORE_CATEGORY, 0) > 0
    assert busy.get("tp_osd_tp", 0) > 0  # submit cost on the caller
    # checksum dominates: bstore CPU should exceed the caller's submit cost
    assert busy[BSTORE_CATEGORY] > busy["tp_osd_tp"]


def test_kv_batching_under_concurrency():
    env, store, thread = make_store()
    n = 24
    committed = []

    def writer(i):
        blob = DataBlob(128 << 10)
        txn = Transaction().write("pg1", f"obj-{i}", 0, blob.length, blob)
        yield from store.queue_transaction(txn, thread)
        committed.append(i)

    for i in range(n):
        env.process(writer(i))
    env.run(until=30.0)
    assert len(committed) == n
    # batching means far fewer kv batches than transactions
    assert store.kv.batches_committed < n


def test_txn_to_missing_collection_fails():
    env, store, thread = make_store()
    blob = DataBlob(4096)
    txn = Transaction().write("nope", "obj", 0, blob.length, blob)

    def proc():
        yield from store.queue_transaction(txn, thread)

    env.process(proc())
    with pytest.raises(StoreError, match="no such collection"):
        env.run(until=10.0)


def test_stat_missing_object_raises():
    env, store, thread = make_store()

    def proc():
        try:
            yield from store.stat("pg1", "ghost", thread)
        except NoSuchObject:
            return "missing"

    p = env.process(proc())
    env.run(until=10.0)
    assert p.value == "missing"


def test_getattr_and_omap():
    env, store, thread = make_store()
    txn = (
        Transaction()
        .touch("pg1", "obj")
        .setattr("pg1", "obj", "_", b"oi-bytes")
        .omap_set("pg1", "obj", "snap", b"meta")
    )
    run_txn(env, store, thread, txn)

    def proc():
        v = yield from store.getattr("pg1", "obj", "_", thread)
        return v

    p = env.process(proc())
    env.run(until=20.0)
    assert p.value == b"oi-bytes"
    assert store.collections["pg1"]["obj"].omap["snap"] == b"meta"


def test_getattr_missing_attr_raises():
    env, store, thread = make_store()
    run_txn(env, store, thread, Transaction().touch("pg1", "obj"))

    def proc():
        try:
            yield from store.getattr("pg1", "obj", "nope", thread)
        except NoSuchObject:
            return "noattr"

    p = env.process(proc())
    env.run(until=20.0)
    assert p.value == "noattr"


def test_read_returns_blob_and_charges_device():
    env, store, thread = make_store()
    blob = DataBlob(1 << 20)
    run_txn(env, store, thread,
            Transaction().write("pg1", "obj", 0, blob.length, blob))

    def proc():
        out = yield from store.read("pg1", "obj", 0, 1 << 20, thread)
        return out

    p = env.process(proc())
    env.run(until=20.0)
    assert p.value.length == 1 << 20
    assert store.ssd.bytes_read == 1 << 20


def test_read_clamps_to_object_size():
    env, store, thread = make_store()
    blob = DataBlob(1000)
    run_txn(env, store, thread,
            Transaction().write("pg1", "obj", 0, 1000, blob))

    def proc():
        out = yield from store.read("pg1", "obj", 500, 10_000, thread)
        return out

    p = env.process(proc())
    env.run(until=20.0)
    assert p.value.length == 500


def test_list_objects_sorted():
    env, store, thread = make_store()
    for name in ["c", "a", "b"]:
        run_txn(env, store, thread, Transaction().touch("pg1", name))

    def proc():
        names = yield from store.list_objects("pg1", thread)
        return names

    p = env.process(proc())
    env.run(until=30.0)
    assert p.value == ["a", "b", "c"]

    def bad():
        try:
            yield from store.list_objects("nope", thread)
        except StoreError:
            return "err"

    p2 = env.process(bad())
    env.run(until=40.0)
    assert p2.value == "err"


def test_saturated_throughput_bounded_by_ssd():
    """Sustained 1 MB writes cannot exceed the device write bandwidth."""
    env, store, thread = make_store()
    done = [0]
    last = [0.0]

    def writer(i):
        for j in range(50):
            blob = DataBlob(1 << 20)
            txn = Transaction().write("pg1", f"o{i}-{j}", 0, blob.length, blob)
            yield from store.queue_transaction(txn, thread)
            done[0] += 1
            last[0] = env.now

    for i in range(8):
        env.process(writer(i))
    env.run(until=10.0)
    assert done[0] == 400
    achieved = done[0] * (1 << 20) / last[0]
    assert achieved <= 1.05e9  # 1 GB/s device
    assert achieved > 0.5e9  # pipeline keeps the device mostly busy
