"""Property tests: BlueStore against a reference model.

For arbitrary sequences of write/touch/remove/truncate operations,
BlueStore must agree with a plain-dictionary model on object existence
and size, and the allocator must conserve space exactly (remove frees
everything a write allocated)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import CpuComplex, SimThread, SsdDevice
from repro.objectstore import (
    BlueStore,
    BlueStoreConfig,
    Transaction,
)
from repro.sim import Environment
from repro.util import DataBlob

KB = 1024

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "touch", "remove", "truncate"]),
        st.integers(min_value=0, max_value=5),        # object index
        st.integers(min_value=1, max_value=512 * KB),  # size
    ),
    min_size=1,
    max_size=30,
)


@given(ops=op_strategy)
@settings(max_examples=40, deadline=None)
def test_bluestore_matches_reference_model(ops):
    env = Environment()
    cpu = CpuComplex(env, "h", cores=4)
    ssd = SsdDevice(env, "s", write_bandwidth=10e9, write_latency=1e-6)
    store = BlueStore(env, "bs", cpu, ssd,
                      BlueStoreConfig(device_capacity=1 << 28))
    store.mkfs()
    store.create_collection_sync("pg")
    thread = SimThread(cpu, "t", "tp_osd_tp")

    model: dict[str, int] = {}  # name -> size

    def driver():
        for kind, idx, size in ops:
            name = f"obj-{idx}"
            txn = Transaction()
            if kind == "write":
                txn.write("pg", name, 0, size, DataBlob(size))
                model[name] = max(model.get(name, 0), size)
            elif kind == "touch":
                txn.touch("pg", name)
                model.setdefault(name, 0)
            elif kind == "remove":
                if name not in model:
                    continue  # store would raise; model skips too
                txn.remove("pg", name)
                del model[name]
            else:  # truncate
                txn.truncate("pg", name, size)
                model[name] = size
            yield from store.queue_transaction(txn, thread)

    p = env.process(driver())
    env.run(until=p)

    objects = store.collections["pg"]
    assert set(objects) == set(model)
    for name, size in model.items():
        assert objects[name].size == size

    # allocator conservation: space held == space the live onodes hold
    held = sum(onode.allocated for onode in objects.values())
    assert store.allocator.used_bytes == held

    # removing everything returns the allocator to pristine
    def cleanup():
        for name in list(model):
            yield from store.queue_transaction(
                Transaction().remove("pg", name), thread
            )

    p2 = env.process(cleanup())
    env.run(until=p2)
    assert store.allocator.used_bytes == 0
    assert store.collections["pg"] == {}


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=2 << 20),
                   min_size=1, max_size=12)
)
@settings(max_examples=30, deadline=None)
def test_bluestore_commit_info_properties(sizes):
    """CommitInfo device time never exceeds total time, and bytes
    committed equal bytes submitted."""
    env = Environment()
    cpu = CpuComplex(env, "h", cores=4)
    ssd = SsdDevice(env, "s", write_bandwidth=1e9, write_latency=1e-5)
    store = BlueStore(env, "bs", cpu, ssd,
                      BlueStoreConfig(device_capacity=1 << 28))
    store.mkfs()
    store.create_collection_sync("pg")
    thread = SimThread(cpu, "t", "tp_osd_tp")
    infos = []

    def driver():
        for i, size in enumerate(sizes):
            info = yield from store.queue_transaction(
                Transaction().write("pg", f"o{i}", 0, size, DataBlob(size)),
                thread,
            )
            infos.append(info)

    p = env.process(driver())
    env.run(until=p)
    assert store.bytes_committed == sum(sizes)
    for info in infos:
        assert 0 <= info.device_time <= info.total_time + 1e-12
        assert info.total_time > 0
