"""Cluster-level chaos tests: OSD crash/restart lifecycle, network
partitions, client resend, monitor failure reports, and the acked-write
durability invariant.

Seeded tests honour ``REPRO_FAULT_SEED`` (CI runs a small seed matrix);
every assertion must hold for any seed.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    ChaosController,
    ChaosIncident,
    DurabilityChecker,
    chaos_profile,
    run_chaos,
)
from repro.cluster import BENCH_POOL, build_baseline_cluster
from repro.faults import FaultPlan
from repro.msgr import MOSDBeacon
from repro.msgr.message import MOSDOpReply
from repro.osd.daemon import OsdDaemon
from repro.rados import OsdState, RadosError
from repro.sim import Environment
from repro.util.bufferlist import DataBlob

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def make_cluster(**overrides):
    env = Environment()
    profile = chaos_profile("baseline", **overrides)
    c = build_baseline_cluster(env, profile)
    boot = env.process(c.boot())
    env.run(until=boot)
    return env, c


def settle(env, cluster, timeout=60.0):
    """Run until every OSD is up and every PG clean again."""
    watcher = ChaosController(cluster, crashes=0, partitions=0)
    proc = env.process(watcher.wait_all_clean())
    env.run(until=proc)
    assert proc.value, "cluster did not return to clean in time"
    return watcher


def write_objects(env, cluster, names, size=1 << 16):
    client = cluster.client

    def work():
        out = {}
        for name in names:
            blob = DataBlob(size)
            res = yield from client.write_object(
                BENCH_POOL, name, size, data=blob
            )
            out[name] = (blob, res)
        return out

    p = env.process(work())
    env.run(until=p)
    return p.value


# --------------------------------------------------------------- lifecycle


def test_crash_restart_lifecycle():
    env, c = make_cluster()
    write_objects(env, c, [f"pre-{i}" for i in range(4)])
    osd = c.osds[0]

    osd.crash()
    assert not osd.alive
    assert osd.crashes == 1
    # crash is idempotent while down
    osd.crash()
    assert osd.crashes == 1
    # the monitor notices the silence and marks it down
    env.run(until=env.now + c.mon.down_grace + 2 * c.profile.mon_check_period)
    assert c.osdmap.osds[0].state == OsdState.DOWN_IN
    # a dead daemon drops incoming traffic instead of processing it
    assert osd.messenger.down

    p = env.process(osd.restart())
    env.run(until=p)
    assert osd.alive and osd.restarts == 1
    settle(env, c)
    assert c.osdmap.osds[0].state == OsdState.UP_IN
    # restarted OSD serves reads again: its PGs are clean members
    for pgid in osd.member_pgs:
        assert osd.pgs[pgid].clean


def test_crash_preserves_acked_writes():
    env, c = make_cluster()
    written = write_objects(env, c, [f"durable-{i}" for i in range(6)])

    c.osds[SEED % len(c.osds)].crash()
    env.run(until=env.now + 3.0)
    p = env.process(c.osds[SEED % len(c.osds)].restart())
    env.run(until=p)
    settle(env, c)

    checker = DurabilityChecker(c)
    for name, (blob, res) in written.items():
        checker.record(name, 1 << 16, blob, res.version, env.now)
    v = env.process(checker.verify(c.client))
    env.run(until=v)
    assert checker.violations == []
    assert checker.objects_verified == len(written)


def test_monitor_detects_osd_that_never_beaconed():
    """Satellite bugfix: an OSD that crashes before its first beacon
    must still trip the grace timer (last_beacon is seeded at monitor
    construction, not first contact)."""
    env, c = make_cluster()
    # stop every beacon before a single one is processed: crash all OSDs
    # right at boot end, then watch the detector
    target = c.osds[1]
    target.crash()
    assert 1 in c.mon.last_beacon  # seeded at construction
    env.run(until=env.now + c.mon.down_grace + 2 * c.profile.mon_check_period)
    assert c.osdmap.osds[1].state != OsdState.UP_IN


def test_down_out_rejoin_and_deterministic_remap():
    env, c = make_cluster(mon_out_interval=4.0)
    osd = c.osds[2]
    osd.crash()
    env.run(until=env.now + c.mon.down_grace + c.mon.out_interval + 2.0)
    assert c.osdmap.osds[2].state == OsdState.DOWN_OUT
    remap = {
        str(pgid): c.osdmap.pg_to_osds(pgid)
        for pgid in c.osdmap.all_pgs(BENCH_POOL)
    }
    # the out OSD serves nothing; survivors carry full acting sets
    for acting in remap.values():
        assert 2 not in acting
        assert len(acting) == 2

    # an identical cluster (same profile, same seeds) remaps identically
    env2, c2 = make_cluster(mon_out_interval=4.0)
    c2.osds[2].crash()
    env2.run(until=env2.now + c2.mon.down_grace + c2.mon.out_interval + 2.0)
    remap2 = {
        str(pgid): c2.osdmap.pg_to_osds(pgid)
        for pgid in c2.osdmap.all_pgs(BENCH_POOL)
    }
    assert remap == remap2

    p = env.process(osd.restart())
    env.run(until=p)
    settle(env, c)
    assert c.osdmap.osds[2].state == OsdState.UP_IN
    assert osd.member_pgs  # took PGs back after rejoin


# --------------------------------------------------------------- partitions


def test_partition_client_resend_completes():
    env, c = make_cluster()
    client = c.client

    # pick an object whose primary is osd.0, then island node0
    oid = next(
        f"part-{i}" for i in range(1000)
        if c.osdmap.pg_primary(c.osdmap.object_to_pg(BENCH_POOL, f"part-{i}"))
        == 0
    )
    addr = c.osdmap.address_of(0)
    c.network.partition({addr}, env.now, env.now + 6.0)

    def work():
        blob = DataBlob(1 << 16)
        res = yield from client.write_object(
            BENCH_POOL, oid, 1 << 16, data=blob
        )
        return blob, res

    p = env.process(work())
    env.run(until=p)
    blob, res = p.value
    assert res.result == 0
    # the op crossed the partition: timeouts + resend to the new primary
    assert client.timeouts > 0
    assert client.resends > 0
    assert c.network.partition_drops > 0
    # bounded: no hang on the dead link
    n = c.profile.client_max_attempts
    bound = n * 2 * c.profile.client_op_timeout + \
        c.profile.client_retry_backoff * n * (n + 1) / 2 + 5.0
    assert res.latency <= bound

    settle(env, c)
    checker = DurabilityChecker(c)
    checker.record(oid, 1 << 16, blob, res.version, env.now)
    v = env.process(checker.verify(client))
    env.run(until=v)
    assert checker.violations == []


def test_heartbeat_dynamic_peer_refresh():
    env, c = make_cluster()
    env.run(until=env.now + 2.0)  # heartbeats establish
    addr0 = c.osdmap.address_of(0)
    hb = c.osds[1].heartbeat
    assert addr0 in hb.peer_addrs

    c.osds[0].crash()
    env.run(until=env.now + c.mon.down_grace + 3.0)
    # osd.0 is down in the map; live agents stop pinging it
    assert not c.osdmap.is_up(0)
    assert addr0 not in hb.peer_addrs

    p = env.process(c.osds[0].restart())
    env.run(until=p)
    settle(env, c)
    env.run(until=env.now + 2.0)
    assert addr0 in hb.peer_addrs


def test_failure_reports_mark_down_before_grace():
    """Quorum of peer reports marks an OSD down without waiting out the
    beacon grace, and its own beacons cannot flap it back up while the
    reports stand."""
    env, c = make_cluster(mon_down_grace=30.0)  # silence alone won't fire
    mon = c.mon
    env.run(until=env.now + 1.0)

    def report(reporter, target):
        mon._handle_beacon(
            MOSDBeacon(src=c.osdmap.address_of(reporter),
                       osd_id=reporter, failed_peers=(target,))
        )

    report(1, 0)
    env.run(until=env.now + 2 * c.profile.mon_check_period)
    assert c.osdmap.is_up(0)  # one reporter < quorum of 2

    report(1, 0)
    report(2, 0)
    env.run(until=env.now + 2 * c.profile.mon_check_period)
    assert not c.osdmap.is_up(0)
    assert mon.report_down_events >= 1

    # anti-flap: the target's own beacon does not mark it up while the
    # report quorum is live
    mon._handle_beacon(MOSDBeacon(src=c.osdmap.address_of(0), osd_id=0))
    assert not c.osdmap.is_up(0)

    # once the reports expire, the next beacon rejoins it
    env.run(until=env.now + mon.report_ttl + 1.0)
    mon._handle_beacon(MOSDBeacon(src=c.osdmap.address_of(0), osd_id=0))
    assert c.osdmap.is_up(0)


# --------------------------------------------------------------- the checker


def test_durability_checker_catches_broken_ack_path():
    """A deliberately-broken OSD that acks writes without committing
    them must produce violations."""
    env, c = make_cluster()

    # OsdDaemon is slotted, so the lying write path is installed on the
    # class (every OSD in this fresh cluster lies) and restored after.
    def lying_write(self, msg, thread):
        yield from thread.charge(self.config.reply_cpu)
        self.messenger.send_message(
            MOSDOpReply(tid=msg.tid, result=0, version=1), msg.src
        )
        release = getattr(msg, "throttle_release", None)
        if release is not None:
            release()

    original = OsdDaemon._handle_client_write
    OsdDaemon._handle_client_write = lying_write
    try:
        checker = DurabilityChecker(c)
        written = write_objects(env, c, ["lie-0", "lie-1"])
        for name, (blob, res) in written.items():
            checker.record(name, 1 << 16, blob, res.version, env.now)
        v = env.process(checker.verify(c.client))
        env.run(until=v)
    finally:
        OsdDaemon._handle_client_write = original
    assert checker.violations  # every acked write is missing
    assert any("lie-0" in s for s in checker.violations)


def test_durability_checker_clean_run_passes():
    env, c = make_cluster()
    checker = DurabilityChecker(c)
    written = write_objects(env, c, [f"clean-{i}" for i in range(3)])
    for name, (blob, res) in written.items():
        checker.record(name, 1 << 16, blob, res.version, env.now)
    v = env.process(checker.verify(c.client))
    env.run(until=v)
    assert checker.violations == []
    assert checker.replicas_compared >= 2 * len(written)


# --------------------------------------------------------------- end to end


def test_chaos_end_to_end_replay_identical():
    """The acceptance run: >=3 crash/restart events plus a partition,
    zero durability violations, no hung client ops, and a byte-identical
    fingerprint across two executions with the same seed."""
    reports = [
        run_chaos(mode="baseline", seed=SEED, duration=4.0, clients=2,
                  crashes=3, partitions=1)
        for _ in range(2)
    ]
    rep = reports[0]
    kinds = [kind for kind, _, _ in rep.incidents]
    assert kinds.count("crash") == 3
    assert kinds.count("restart") == 3
    assert kinds.count("partition") == 1
    assert rep.writes_acked > 0
    assert rep.violations == []
    assert rep.settle_timeouts == 0
    assert rep.max_op_latency <= rep.latency_bound
    assert rep.passed
    assert rep.health is not None
    assert rep.health["osds"]["crashes"] == 3
    assert rep.health["pgs"]["degraded"] == 0
    assert rep.fingerprint() == reports[1].fingerprint()


def test_chaos_doceph_mode():
    """The DPU deployment survives a daemon crash too: the host-side
    store outlives the DPU OSD and resync runs over the proxy."""
    rep = run_chaos(mode="doceph", seed=SEED, duration=2.0, clients=1,
                    crashes=1, partitions=0)
    assert rep.writes_acked > 0
    assert rep.violations == []
    assert rep.settle_timeouts == 0


# --------------------------------------------------------- regressions


def test_verify_counts_only_clean_objects():
    """objects_verified must not be inflated by objects that violated:
    a ghost record (acked but never written) adds violations, not a
    verified count."""
    env, c = make_cluster()
    written = write_objects(env, c, ["real-0", "real-1"])
    checker = DurabilityChecker(c)
    for name, (blob, res) in written.items():
        checker.record(name, 1 << 16, blob, res.version, env.now)
    checker.record("ghost", 1 << 16, DataBlob(1 << 16), 1, env.now)
    v = env.process(checker.verify(c.client))
    env.run(until=v)
    assert any("ghost" in violation for violation in checker.violations)
    assert checker.objects_verified == 2  # the ghost never counts


def test_recovery_sample_only_on_clean_settle():
    """A timed-out settle is not a recovery sample; only a settle that
    actually reached clean appends to recovery_to_clean."""
    env, c = make_cluster()
    controller = ChaosController(c, crashes=0, partitions=0)
    incident = ChaosIncident(
        kind="crash", target=0, duration=0.1, gap=0.1
    )

    def fake_wait(result):
        def gen():
            yield env.timeout(0.0)
            return result
        return gen

    controller.wait_all_clean = fake_wait(False)
    p = env.process(controller._run_crash(incident))
    env.run(until=p)
    assert controller.recovery_to_clean == []

    controller.wait_all_clean = fake_wait(True)
    p = env.process(controller._run_crash(incident))
    env.run(until=p)
    assert len(controller.recovery_to_clean) == 1


def test_no_acting_set_bounded_without_op_timeout():
    """With op_timeout=None an op that finds no acting set must still
    fail after max_attempts instead of waiting forever."""
    env, c = make_cluster()
    client = c.client
    client.op_timeout = None  # the timeout-less client must not hang
    client.max_attempts = 3
    # monitor-side view: every OSD down → pg_primary raises
    for osd in c.osds:
        osd.crash()
        c.osdmap.mark_down(osd.osd_id)

    def work():
        with pytest.raises(RadosError) as exc_info:
            yield from client.stat_object(BENCH_POOL, "whatever")
        return exc_info.value

    p = env.process(work())
    env.run(until=p)
    assert p.value.result == -110
    assert "no acting set" in str(p.value)


def test_regression_partial_holder_upgrade_race():
    """The shrunk fuzz scenario that exposed the data-loss chain:
    interleaved crashes + a partition made an OSD promote itself to a
    full holder before the restarted peer merged interim writes back,
    and a later resync discarded the only copy.  Must now verify clean
    (see corpus/crash-missing_replica-missing-*.plan)."""
    from repro.faults import FaultPlan, parse_fault_specs

    rep = run_chaos(
        mode="baseline", seed=392, duration=0.5, clients=2,
        object_size=65536, crashes=2, partitions=0,
        fault_plan=FaultPlan(
            seed=2030,
            specs=parse_fault_specs(
                "net:partition,window=1.935-4.683,nodes=node1"
            ),
        ),
        think_time=0.2,
    )
    assert rep.violations == []
    assert rep.settle_timeouts == 0


@settings(max_examples=3, deadline=None)
@given(
    crashes=st.integers(min_value=0, max_value=2),
    partitions=st.integers(min_value=0, max_value=1),
    seed=st.integers(min_value=0, max_value=31),
)
def test_chaos_random_schedules_never_lose_acked_writes(
    crashes, partitions, seed
):
    rep = run_chaos(mode="baseline", seed=seed ^ SEED, duration=1.5,
                    clients=1, crashes=crashes, partitions=partitions)
    assert rep.violations == []
    assert rep.settle_timeouts == 0
    assert rep.max_op_latency <= rep.latency_bound


# --------------------------------------------------------- wire adversary


ADVERSARY_FAULTS = (
    "net:corrupt,p=0.15;net:dup,p=0.1;net:reorder,p=0.1;"
    "net:jitter,p=0.1,delay=0.002;net:truncate,p=0.05"
)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chaos_survives_wire_adversary(seed):
    """The acceptance oracle for the wire-integrity layer: with every
    adversary kind firing at aggressive rates on top of a crash and a
    partition, no acked write is lost and no corrupted payload is ever
    dispatched — and the wire counters prove the adversary actually
    hit (detections, suppressions, retransmissions all nonzero)."""
    plan = FaultPlan.parse(ADVERSARY_FAULTS, seed=seed)
    rep = run_chaos(mode="baseline", seed=seed, duration=4.0, clients=2,
                    crashes=1, partitions=1, fault_plan=plan)
    assert rep.writes_acked > 0
    assert rep.violations == []
    assert rep.settle_timeouts == 0
    assert rep.passed
    assert rep.wire_incidents.get("crc_rejected", 0) > 0
    assert rep.wire_incidents.get("dup_suppressed", 0) > 0
    assert rep.wire_incidents.get("retransmit", 0) > 0


def test_chaos_wire_adversary_replay_identical():
    reports = [
        run_chaos(mode="baseline", seed=SEED, duration=2.0, clients=1,
                  crashes=1, partitions=0,
                  fault_plan=FaultPlan.parse(ADVERSARY_FAULTS, seed=SEED))
        for _ in range(2)
    ]
    assert reports[0].fingerprint() == reports[1].fingerprint()
    assert reports[0].wire_incidents == reports[1].wire_incidents
