"""Tests for the command-line interface."""

import argparse

import pytest

from repro.cli import _parse_size, build_parser, main


def test_parse_size_units():
    assert _parse_size("4M") == 4 << 20
    assert _parse_size("512K") == 512 * 1024
    assert _parse_size("1G") == 1 << 30
    assert _parse_size("1048576") == 1 << 20
    assert _parse_size("0.5M") == 512 * 1024
    assert _parse_size(" 2m ") == 2 << 20


def test_parse_size_rejects_garbage():
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_size("lots")


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_accepts_all_experiments():
    parser = build_parser()
    for name in ("fig5", "fig6", "table2", "fig7", "fig8", "table3",
                 "fig9", "fig10", "all"):
        args = parser.parse_args([name, "--duration", "5"])
        assert args.command == name
        assert args.duration == 5.0


def test_bench_command_runs(capsys, tmp_path):
    code = main(["bench", "--mode", "baseline", "--size", "1M",
                 "--clients", "2", "--duration", "2",
                 "--json-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "iops:" in out
    assert "host CPU:" in out
    assert "mode=baseline" in out


def test_bench_command_writes_json(tmp_path):
    import json

    code = main(["bench", "--mode", "doceph", "--size", "1M",
                 "--clients", "2", "--duration", "2",
                 "--json-dir", str(tmp_path)])
    assert code == 0
    path = tmp_path / "BENCH_bench_doceph_1M.json"
    assert path.exists()
    doc = json.loads(path.read_text())
    assert doc["completed_ops"] > 0
    assert doc["latency_s"]["p99"] >= doc["latency_s"]["p50"]
    assert "ceph_breakdown" in doc["cpu"]


def test_bench_no_json(capsys, tmp_path):
    code = main(["bench", "--mode", "baseline", "--size", "1M",
                 "--clients", "2", "--duration", "2", "--no-json",
                 "--json-dir", str(tmp_path)])
    assert code == 0
    assert list(tmp_path.iterdir()) == []


def test_fig7_command_runs(capsys, tmp_path):
    import json

    code = main(["fig7", "--duration", "2", "--json-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Fig. 7" in out
    assert "doceph(paper)" in out
    doc = json.loads((tmp_path / "BENCH_fig7.json").read_text())
    assert len(doc["points"]) == 4
    for point in doc["points"]:
        assert point["baseline"]["iops"] > 0
        assert point["doceph"]["cpu"]["host_utilization_pct"] < (
            point["baseline"]["cpu"]["host_utilization_pct"]
        )


def test_trace_command_runs(capsys, tmp_path):
    import json

    out_file = tmp_path / "trace.json"
    code = main(["trace", "--mode", "doceph", "--size", "1M",
                 "--clients", "2", "--duration", "2", "--replay",
                 "--out", str(out_file)])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace fingerprint:" in out
    assert "replay: identical fingerprint" in out
    doc = json.loads(out_file.read_text())
    assert doc["traceEvents"]
    kinds = {ev["ph"] for ev in doc["traceEvents"]}
    assert {"X", "M", "s", "f"} <= kinds


def test_lint_command_clean_tree_exits_zero(capsys, tmp_path):
    pkg = tmp_path / "repro" / "hw"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text(
        "class Thing:\n    __slots__ = ('x',)\n", encoding="utf-8"
    )
    code = main(["lint", str(tmp_path),
                 "--baseline", str(tmp_path / "baseline.txt")])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 new finding(s)" in out


def test_lint_command_new_findings_exit_three(capsys, tmp_path):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import time\n\n"
        "class Hot:\n"
        "    def tick(self):\n"
        "        time.sleep(1)\n"
        "        return time.time()\n",
        encoding="utf-8",
    )
    code = main(["lint", str(tmp_path),
                 "--baseline", str(tmp_path / "baseline.txt")])
    assert code == 3
    out = capsys.readouterr().out
    assert "DET101" in out
    assert "SIM201" in out
    assert "PERF301" in out


def test_lint_fix_baseline_then_clean(capsys, tmp_path):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import time\n\nnow = time.time()\n", encoding="utf-8"
    )
    baseline = tmp_path / "baseline.txt"
    assert main(["lint", str(tmp_path), "--baseline", str(baseline),
                 "--fix-baseline"]) == 0
    assert baseline.exists()
    capsys.readouterr()
    # baselined findings no longer fail the run...
    assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
    # ...but a fresh violation still does.
    (pkg / "worse.py").write_text(
        "import time\n\nlater = time.time()\n", encoding="utf-8"
    )
    assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 3


def test_lint_shipped_tree_is_clean():
    assert main(["lint", "src"]) == 0


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_code in ("DET101", "DET106", "SIM201", "SIM202",
                      "PERF301", "PERF302"):
        assert rule_code in out


def test_fuzz_replay_pass_and_violation_exit_codes(
    capsys, tmp_path, monkeypatch
):
    from repro.fuzz import Scenario, scenario_to_text
    from repro.fuzz.executor import ScenarioOutcome

    plan = tmp_path / "quiet.plan"
    plan.write_text(scenario_to_text(Scenario(duration=0.5)))
    assert main(["fuzz", "--replay", str(plan), "--no-json"]) == 0
    out = capsys.readouterr().out
    assert "replay: pass" in out

    def fake_execute(scenario, tracer_seed=0):
        return ScenarioOutcome(
            scenario=scenario,
            violations=("obj-1: acked write missing (stat result -2)",),
            coverage=frozenset({"mode.baseline"}),
            fingerprint="x",
            aborted="",
        )

    monkeypatch.setattr("repro.fuzz.execute_scenario", fake_execute)
    assert main(["fuzz", "--replay", str(plan), "--no-json"]) == 3
    out = capsys.readouterr().out
    assert "VIOLATION" in out and "[missing]" in out


def test_fuzz_replay_bad_plan_exits_two(capsys, tmp_path):
    bad = tmp_path / "bad.plan"
    bad.write_text("mode=warp9\n")
    assert main(["fuzz", "--replay", str(bad), "--no-json"]) == 2
    assert main(["fuzz", "--replay", str(tmp_path / "absent.plan"),
                 "--no-json"]) == 2


def test_fuzz_session_writes_json_and_prints_fingerprint(
    capsys, tmp_path, monkeypatch
):
    import json

    from repro.fuzz.executor import ScenarioOutcome

    def fake_execute(scenario, tracer_seed=0):
        return ScenarioOutcome(
            scenario=scenario,
            violations=(),
            coverage=frozenset({f"mode.{scenario.mode}"}),
            fingerprint="x",
            aborted="",
            writes_acked=1,
        )

    monkeypatch.setattr("repro.fuzz.executor.execute_scenario",
                        fake_execute)
    monkeypatch.setattr("repro.fuzz.fuzzer.execute_scenario",
                        fake_execute)
    code = main(["fuzz", "--seed", "4", "--iterations", "3",
                 "--json-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "fuzz fingerprint:" in out
    assert "no violations" in out
    payload = json.loads(
        (tmp_path / "BENCH_fuzz_seed4.json").read_text()
    )
    assert payload["passed"] is True
    assert payload["iterations_run"] == 3
