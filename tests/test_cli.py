"""Tests for the command-line interface."""

import argparse

import pytest

from repro.cli import _parse_size, build_parser, main


def test_parse_size_units():
    assert _parse_size("4M") == 4 << 20
    assert _parse_size("512K") == 512 * 1024
    assert _parse_size("1G") == 1 << 30
    assert _parse_size("1048576") == 1 << 20
    assert _parse_size("0.5M") == 512 * 1024
    assert _parse_size(" 2m ") == 2 << 20


def test_parse_size_rejects_garbage():
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_size("lots")


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_accepts_all_experiments():
    parser = build_parser()
    for name in ("fig5", "fig6", "table2", "fig7", "fig8", "table3",
                 "fig9", "fig10", "all"):
        args = parser.parse_args([name, "--duration", "5"])
        assert args.command == name
        assert args.duration == 5.0


def test_bench_command_runs(capsys):
    code = main(["bench", "--mode", "baseline", "--size", "1M",
                 "--clients", "2", "--duration", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "iops:" in out
    assert "host CPU:" in out
    assert "mode=baseline" in out


def test_fig7_command_runs(capsys):
    code = main(["fig7", "--duration", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Fig. 7" in out
    assert "doceph(paper)" in out
