"""Tests for hardware profiles and cluster construction options."""

import pytest
from dataclasses import replace

from repro.cluster import (
    BENCH_POOL,
    DocephProfile,
    GIGABIT,
    HUNDRED_GIG,
    HardwareProfile,
    build_baseline_cluster,
    build_doceph_cluster,
)
from repro.sim import Environment


def test_profile_defaults_match_paper_testbed():
    p = HardwareProfile()
    assert p.storage_nodes == 2
    assert p.replication == 2
    assert p.net_bandwidth == HUNDRED_GIG
    assert p.dpu_cores == 16  # BF3
    assert p.dma_max_transfer == 2 * 1024 * 1024  # the 2 MB cap
    assert p.scrub_interval is None  # off by default


def test_with_bandwidth_builds_variant():
    p = HardwareProfile().with_bandwidth(GIGABIT)
    assert p.net_bandwidth == GIGABIT
    assert p.storage_nodes == 2  # everything else unchanged


def test_doceph_profile_extends_hardware_profile():
    p = DocephProfile()
    assert isinstance(p, HardwareProfile)
    assert p.pipelining and p.mr_cache and p.fallback_enabled
    variant = replace(p, pipelining=False, dma_fault_rate=0.5)
    assert not variant.pipelining
    assert variant.mr_cache  # untouched fields preserved


def test_profiles_are_frozen():
    p = HardwareProfile()
    with pytest.raises(AttributeError):
        p.storage_nodes = 5  # type: ignore[misc]


def test_baseline_cluster_structure():
    env = Environment()
    c = build_baseline_cluster(env)
    assert c.mode == "baseline"
    assert len(c.nodes) == 2
    assert len(c.osds) == 2
    assert len(c.stores) == 2
    assert all(not n.has_dpu for n in c.nodes)
    assert c.proxy_servers == []
    assert c.ceph_cpus() == c.host_cpus()


def test_doceph_cluster_structure():
    env = Environment()
    c = build_doceph_cluster(env)
    assert c.mode == "doceph"
    assert all(n.has_dpu for n in c.nodes)
    assert len(c.proxy_servers) == 2
    assert c.ceph_cpus() == c.dpu_cpus()
    assert c.ceph_cpus() != c.host_cpus()


def test_cluster_scales_to_more_nodes():
    env = Environment()
    profile = HardwareProfile(storage_nodes=4, replication=3, pg_num=32)
    c = build_baseline_cluster(env, profile)
    boot = env.process(c.boot())
    env.run(until=boot)

    def work():
        r = yield from c.client.write_object(BENCH_POOL, "scale", 1 << 20)
        return r

    p = env.process(work())
    env.run(until=p)
    assert p.value.result == 0
    found = sum(
        1
        for store in c.stores
        for objects in store.collections.values()
        if "scale" in objects
    )
    assert found == 3  # replication factor honored on the larger cluster


def test_osdmap_addresses_match_nodes():
    env = Environment()
    c = build_baseline_cluster(env)
    for i, node in enumerate(c.nodes):
        assert c.osdmap.address_of(i) == node.name


def test_two_clusters_coexist_in_one_environment():
    """Each builder creates its own fabric and address directory, so two
    independent clusters can share a simulation clock (useful for
    side-by-side comparisons on one timeline)."""
    env = Environment()
    a = build_baseline_cluster(env)
    b = build_doceph_cluster(env)
    for cluster in (a, b):
        boot = env.process(cluster.boot())
        env.run(until=boot)

    def work(cluster, name):
        r = yield from cluster.client.write_object(BENCH_POOL, name, 1 << 20)
        return r.result

    pa = env.process(work(a, "obj-a"))
    pb = env.process(work(b, "obj-b"))
    env.run(until=pa)
    env.run(until=pb)
    assert pa.value == 0 and pb.value == 0


@pytest.mark.parametrize("builder", [build_baseline_cluster,
                                     build_doceph_cluster])
def test_add_pool_at_runtime(builder):
    """A second pool created post-boot is writable on both deployments
    and isolated from the bench pool."""
    env = Environment()
    c = builder(env)
    boot = env.process(c.boot())
    env.run(until=boot)

    p = env.process(c.add_pool("images", pg_num=16, size=2))
    env.run(until=p)
    pool = p.value
    assert pool.name == "images"
    assert c.osdmap.pool_by_name("images").pg_num == 16

    def work():
        r1 = yield from c.client.write_object("images", "img-1", 1 << 20)
        r2 = yield from c.client.write_object(BENCH_POOL, "img-1", 2 << 20)
        s1 = yield from c.client.stat_object("images", "img-1")
        s2 = yield from c.client.stat_object(BENCH_POOL, "img-1")
        return r1, r2, s1, s2

    w = env.process(work())
    env.run(until=w)
    r1, r2, s1, s2 = w.value
    assert r1.result == 0 and r2.result == 0
    # same object name, different pools, independent sizes
    assert s1.attachment.size == 1 << 20
    assert s2.attachment.size == 2 << 20


def test_add_pool_duplicate_name_rejected():
    env = Environment()
    c = build_baseline_cluster(env)
    boot = env.process(c.boot())
    env.run(until=boot)
    p = env.process(c.add_pool(BENCH_POOL))
    with pytest.raises(ValueError):
        env.run(until=p)
