"""Unit tests for DoCeph core components: segmentation, fallback
controller, DOCA MR cache, RPC channel, and the DMA pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DocephProfile
from repro.core import (
    CommChannel,
    DocaDma,
    FallbackController,
    MemoryRegion,
    PROBE_BYTES,
    RpcChannel,
    RpcError,
    DmaPipeline,
    segment_sizes,
)
from repro.core.pipeline import union_length
from repro.hw import ClusterNode, CpuComplex, DmaEngine, Network, SimThread, SsdDevice
from repro.sim import Environment
from repro.util import BufferList


MB = 1 << 20


def make_dpu_node(env, profile=None, dma_kwargs=None):
    profile = profile or DocephProfile()
    network = Network(env)
    host_cpu = CpuComplex(env, "n.host", cores=8)
    dpu_cpu = CpuComplex(env, "n.dpu", cores=8, perf=0.45)
    ssd = SsdDevice(env, "n.ssd")
    dma = DmaEngine(env, "n.dma", **(dma_kwargs or {}))
    node = ClusterNode(
        env, network, "n", host_cpu, ssd, nic_bandwidth=100e9,
        tcp=profile.tcp, dpu_cpu=dpu_cpu, dma=dma,
    )
    return node, profile


# --------------------------------------------------------------- segmentation


def test_segment_sizes_exact_multiple():
    assert segment_sizes(4 * MB, 2 * MB) == [2 * MB, 2 * MB]


def test_segment_sizes_remainder():
    assert segment_sizes(5 * MB, 2 * MB) == [2 * MB, 2 * MB, 1 * MB]


def test_segment_sizes_small_and_zero():
    assert segment_sizes(100, 2 * MB) == [100]
    assert segment_sizes(0, 2 * MB) == []


def test_segment_sizes_validation():
    with pytest.raises(ValueError):
        segment_sizes(-1, 2 * MB)
    with pytest.raises(ValueError):
        segment_sizes(100, 0)


@given(total=st.integers(min_value=0, max_value=1 << 30),
       seg=st.integers(min_value=64 * 1024, max_value=4 * MB))
@settings(max_examples=200, deadline=None)
def test_segment_sizes_property(total, seg):
    """§4: k = ceil(N / max); every segment = min(max, remaining)."""
    sizes = segment_sizes(total, seg)
    assert sum(sizes) == total
    assert len(sizes) == -(-total // seg)
    assert all(0 < s <= seg for s in sizes)
    if sizes:
        assert all(s == seg for s in sizes[:-1])  # only the tail is short


# --------------------------------------------------------------- union_length


def test_union_length_empty_and_degenerate():
    assert union_length([]) == 0.0
    assert union_length([(5.0, 5.0)]) == 0.0


def test_union_length_disjoint_and_overlap():
    assert union_length([(0, 1), (2, 3)]) == pytest.approx(2.0)
    assert union_length([(0, 2), (1, 3)]) == pytest.approx(3.0)
    assert union_length([(0, 10), (2, 3)]) == pytest.approx(10.0)


@given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                          st.floats(0, 100, allow_nan=False)),
                max_size=20))
@settings(max_examples=100)
def test_union_length_bounds(intervals):
    norm = [(min(a, b), max(a, b)) for a, b in intervals]
    u = union_length(norm)
    total = sum(e - s for s, e in norm)
    assert 0 <= u <= total + 1e-9
    if norm:
        span = max(e for _, e in norm) - min(s for s, _ in norm)
        assert u <= span + 1e-9


# --------------------------------------------------------------- fallback


def test_fallback_initial_state_allows_dma():
    fb = FallbackController(cooldown_seconds=2.0)
    assert fb.dma_allowed(0.0)
    assert not fb.in_cooldown(0.0)
    assert not fb.probe_due(0.0)


def test_fallback_failure_starts_cooldown():
    fb = FallbackController(cooldown_seconds=2.0)
    fb.record_failure(10.0)
    assert not fb.dma_allowed(10.5)
    assert fb.in_cooldown(11.9)
    assert not fb.in_cooldown(12.1)
    # cooldown over but probe pending: still no normal DMA
    assert fb.probe_due(12.1)
    assert not fb.dma_allowed(12.1)


def test_fallback_probe_success_rearms():
    fb = FallbackController(cooldown_seconds=2.0)
    fb.record_failure(0.0)
    fb.record_probe(True, 2.5)
    assert fb.dma_allowed(2.5)
    assert fb.probes_succeeded == 1


def test_fallback_probe_failure_extends_cooldown():
    fb = FallbackController(cooldown_seconds=2.0)
    fb.record_failure(0.0)
    fb.record_probe(False, 2.5)
    assert not fb.dma_allowed(3.0)
    assert fb.probe_due(4.6)


def test_fallback_disabled_always_allows():
    fb = FallbackController(cooldown_seconds=2.0, enabled=False)
    fb.record_failure(0.0)
    assert fb.dma_allowed(0.1)
    assert not fb.in_cooldown(0.1)


def test_fallback_statistics():
    fb = FallbackController(cooldown_seconds=1.0)
    fb.record_failure(0.0)
    fb.record_fallback_segment()
    fb.record_fallback_segment()
    assert fb.failures == 1
    assert fb.fallback_segments == 2


# --------------------------------------------------------------- doca


def test_mr_cache_skips_renegotiation():
    env = Environment()
    node, profile = make_dpu_node(env)
    comm = CommChannel(node, negotiate_latency=1e-3)
    doca = DocaDma(node, comm, mr_cache_enabled=True)
    region = MemoryRegion(2 * MB)
    thread = SimThread(node.dpu_cpu, "t", "proxy")

    def work():
        yield from doca.transfer(region, MB, thread)
        yield from doca.transfer(region, MB, thread)

    p = env.process(work())
    env.run(until=p)
    assert comm.negotiations == 1
    assert doca.cache_hits == 1
    assert doca.cache_misses == 1


def test_mr_cache_disabled_negotiates_every_time():
    env = Environment()
    node, profile = make_dpu_node(env)
    comm = CommChannel(node, negotiate_latency=1e-3)
    doca = DocaDma(node, comm, mr_cache_enabled=False)
    region = MemoryRegion(2 * MB)
    thread = SimThread(node.dpu_cpu, "t", "proxy")

    def work():
        for _ in range(3):
            yield from doca.transfer(region, MB, thread)

    p = env.process(work())
    env.run(until=p)
    assert comm.negotiations == 3
    assert doca.cache_hits == 0


def test_doca_failure_invalidates_cached_region():
    env = Environment()
    node, profile = make_dpu_node(env)
    comm = CommChannel(node, negotiate_latency=1e-3)
    doca = DocaDma(node, comm, mr_cache_enabled=True)
    region = MemoryRegion(2 * MB)
    thread = SimThread(node.dpu_cpu, "t", "proxy")
    fail_next = [False]
    node.dma.fault_hook = lambda n: fail_next[0]

    def work():
        from repro.hw import DmaError

        yield from doca.transfer(region, MB, thread)
        fail_next[0] = True
        try:
            yield from doca.transfer(region, MB, thread)
        except DmaError:
            pass
        fail_next[0] = False
        yield from doca.transfer(region, MB, thread)

    p = env.process(work())
    env.run(until=p)
    # first transfer negotiates; failure invalidates; third renegotiates
    assert comm.negotiations == 2


def test_doca_rejects_transfer_bigger_than_region():
    env = Environment()
    node, profile = make_dpu_node(env)
    doca = DocaDma(node, CommChannel(node, 1e-3))
    region = MemoryRegion(1024)
    thread = SimThread(node.dpu_cpu, "t", "proxy")

    def work():
        yield from doca.transfer(region, 4096, thread)

    p = env.process(work())
    with pytest.raises(ValueError):
        env.run(until=p)


def test_doca_requires_dma_node():
    env = Environment()
    network = Network(env)
    host_cpu = CpuComplex(env, "h", cores=2)
    ssd = SsdDevice(env, "s")
    from repro.hw import TcpStackModel

    node = ClusterNode(env, network, "plain", host_cpu, ssd,
                       nic_bandwidth=1e9, tcp=TcpStackModel())
    with pytest.raises(ValueError):
        DocaDma(node, CommChannel(node, 1e-3))


# --------------------------------------------------------------- rpc channel


def make_rpc(env):
    node, profile = make_dpu_node(env)
    channel = RpcChannel(node, profile)
    thread = SimThread(node.dpu_cpu, "caller", "proxy")
    return node, channel, thread


def test_rpc_call_roundtrip():
    env = Environment()
    node, channel, thread = make_rpc(env)

    def handler(req, t):
        d = req.payload.decoder()
        req.reply = {"echo": d.decode_str()}
        if False:
            yield

    channel.register_handler("echo", handler)

    def work():
        bl = BufferList()
        bl.encode_str("hello")
        req = yield from channel.call("echo", bl, thread)
        return req.reply

    p = env.process(work())
    env.run(until=p)
    assert p.value == {"echo": "hello"}
    assert channel.calls == 1


def test_rpc_unknown_op_errors():
    env = Environment()
    node, channel, thread = make_rpc(env)

    def work():
        try:
            yield from channel.call("nope", BufferList(), thread)
        except RpcError as exc:
            return str(exc)

    p = env.process(work())
    env.run(until=p)
    assert "no handler" in p.value
    assert channel.errors == 1


def test_rpc_handler_exception_propagates_as_error():
    env = Environment()
    node, channel, thread = make_rpc(env)

    def handler(req, t):
        raise RuntimeError("kaboom")
        if False:
            yield

    channel.register_handler("bad", handler)

    def work():
        try:
            yield from channel.call("bad", BufferList(), thread)
        except RpcError as exc:
            return str(exc)

    p = env.process(work())
    env.run(until=p)
    assert "RuntimeError" in p.value and "kaboom" in p.value


def test_rpc_charges_host_proxy_cpu():
    env = Environment()
    node, channel, thread = make_rpc(env)

    def handler(req, t):
        req.reply = {"ok": True}
        if False:
            yield

    channel.register_handler("ping", handler)

    def work():
        for _ in range(10):
            yield from channel.call("ping", BufferList(), thread)

    p = env.process(work())
    env.run(until=p)
    assert node.host_cpu.accounting.busy_by_category.get("proxy", 0) > 0


def test_rpc_bulk_bytes_ride_the_socket():
    env = Environment()
    node, channel, thread = make_rpc(env)
    times = {}

    def handler(req, t):
        req.reply = {"ok": True}
        if False:
            yield

    channel.register_handler("bulk", handler)

    def work(tag, bulk):
        t0 = env.now
        yield from channel.call("bulk", BufferList(), thread,
                                bulk_bytes=bulk)
        times[tag] = env.now - t0

    p1 = env.process(work("small", 0))
    env.run(until=p1)
    p2 = env.process(work("big", 8 * MB))
    env.run(until=p2)
    assert times["big"] > 5 * times["small"]
    assert channel.bulk_bytes == 8 * MB


def test_rpc_requires_dpu_node():
    env = Environment()
    network = Network(env)
    from repro.hw import TcpStackModel

    node = ClusterNode(env, network, "plain",
                       CpuComplex(env, "h", cores=2),
                       SsdDevice(env, "s"),
                       nic_bandwidth=1e9, tcp=TcpStackModel())
    with pytest.raises(ValueError):
        RpcChannel(node, DocephProfile())


# --------------------------------------------------------------- pipeline


def make_pipeline(env, pipelined=True, n_buffers=4, profile=None,
                  dma_kwargs=None):
    node, profile = make_dpu_node(env, profile, dma_kwargs)
    channel = RpcChannel(node, profile)

    def bulk_handler(req, t):
        req.reply = {"ok": True}
        if False:
            yield

    channel.register_handler("bulk", bulk_handler)
    comm = CommChannel(node, profile.comm_channel_negotiate_latency)
    doca = DocaDma(node, comm, mr_cache_enabled=True)
    fb = FallbackController(cooldown_seconds=0.5)
    stage_thread = SimThread(node.dpu_cpu, "stage", "proxy")
    pipe = DmaPipeline(
        env, doca, channel, fb,
        stage_thread=stage_thread,
        memcpy_bandwidth=3e9,
        segment_bytes=2 * MB,
        n_buffers=n_buffers,
        pipelined=pipelined,
    )
    thread = SimThread(node.dpu_cpu, "caller", "proxy")
    return node, pipe, fb, thread


def test_pipeline_moves_all_bytes():
    env = Environment()
    node, pipe, fb, thread = make_pipeline(env)

    def work():
        timing = yield from pipe.push(7 * MB, thread)
        return timing

    p = env.process(work())
    env.run(until=p)
    timing = p.value
    assert timing.size == 7 * MB
    assert timing.segments == 4
    assert node.dma.bytes_transferred == 7 * MB
    assert timing.dma_time > 0
    assert timing.total > 0


def test_pipelined_beats_sequential_latency():
    def run(pipelined):
        env = Environment()
        node, pipe, fb, thread = make_pipeline(env, pipelined=pipelined)

        def work():
            timing = yield from pipe.push(16 * MB, thread)
            return timing.total

        p = env.process(work())
        env.run(until=p)
        return p.value

    assert run(True) < run(False)


def test_pipeline_requires_two_buffers_when_pipelined():
    env = Environment()
    with pytest.raises(ValueError):
        make_pipeline(env, pipelined=True, n_buffers=1)
    # sequential mode works with a single buffer
    env2 = Environment()
    node, pipe, fb, thread = make_pipeline(env2, pipelined=False, n_buffers=1)

    def work():
        yield from pipe.push(4 * MB, thread)

    p = env2.process(work())
    env2.run(until=p)
    assert node.dma.bytes_transferred == 4 * MB


def test_pipeline_fallback_on_dma_failure():
    env = Environment()
    node, pipe, fb, thread = make_pipeline(env)
    # fail the 2nd transfer only
    count = [0]

    def hook(n):
        count[0] += 1
        return count[0] == 2

    node.dma.fault_hook = hook

    def work():
        timing = yield from pipe.push(8 * MB, thread)
        return timing

    p = env.process(work())
    env.run(until=p)
    timing = p.value
    assert fb.failures == 1
    # the failed segment (plus any in-cooldown ones) went via RPC
    assert timing.fallback_bytes >= 2 * MB
    assert fb.fallback_segments >= 1
    # successful DMA bytes + fallback bytes cover the request
    assert node.dma.bytes_transferred + timing.fallback_bytes == 8 * MB


def test_pipeline_probe_reenables_dma():
    env = Environment()
    node, pipe, fb, thread = make_pipeline(env)
    fb.record_failure(env.now)  # force cooldown

    def work():
        # During cooldown: all RPC
        t1 = yield from pipe.push(2 * MB, thread)
        yield env.timeout(1.0)  # cooldown (0.5 s) expires
        t2 = yield from pipe.push(2 * MB, thread)
        return t1, t2

    p = env.process(work())
    env.run(until=p)
    t1, t2 = p.value
    assert t1.fallback_bytes == 2 * MB
    assert t2.fallback_bytes == 0
    assert fb.probes_succeeded == 1
    assert node.dma.bytes_transferred == 2 * MB + PROBE_BYTES


def test_pipeline_zero_bytes_is_noop():
    env = Environment()
    node, pipe, fb, thread = make_pipeline(env)

    def work():
        timing = yield from pipe.push(0, thread)
        return timing

    p = env.process(work())
    env.run(until=p)
    assert p.value.segments == 0
    assert node.dma.transfers == 0
