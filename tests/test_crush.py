"""Tests for the CRUSH implementation (straw2, hierarchy, rules)."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crush import CrushMap, CrushRule, ChooseStep, Straw2Bucket


def build_map(hosts=4, osds_per_host=2, weight=1.0):
    """root 'default' -> host buckets -> osd devices."""
    cmap = CrushMap()
    cmap.add_bucket("default", "root")
    osd_id = 0
    for h in range(hosts):
        host = f"host{h}"
        cmap.add_bucket(host, "host")
        for _ in range(osds_per_host):
            cmap.add_device(host, osd_id, weight)
            osd_id += 1
        cmap.link_bucket("default", host)
    cmap.add_rule(CrushMap.replicated_rule())
    return cmap


# ---------------------------------------------------------------- buckets


def test_straw2_requires_negative_id():
    with pytest.raises(ValueError):
        Straw2Bucket(1, "bad", "host")


def test_straw2_duplicate_item_rejected():
    b = Straw2Bucket(-1, "b", "host")
    b.add_item(0, 1.0)
    with pytest.raises(ValueError):
        b.add_item(0, 1.0)


def test_straw2_empty_choose_raises():
    b = Straw2Bucket(-1, "b", "host")
    with pytest.raises(ValueError):
        b.choose(1, 0)


def test_straw2_zero_weight_never_chosen():
    b = Straw2Bucket(-1, "b", "host")
    b.add_item(0, 0.0)
    b.add_item(1, 1.0)
    for x in range(200):
        assert b.choose(x, 0) == 1


def test_straw2_deterministic():
    b = Straw2Bucket(-1, "b", "host")
    for i in range(5):
        b.add_item(i, 1.0)
    assert [b.choose(x, 0) for x in range(50)] == [
        b.choose(x, 0) for x in range(50)
    ]


def test_straw2_weight_proportional_distribution():
    """Item with 3x weight receives ~3x the inputs."""
    b = Straw2Bucket(-1, "b", "host")
    b.add_item(0, 1.0)
    b.add_item(1, 3.0)
    counts = collections.Counter(b.choose(x, 0) for x in range(20_000))
    ratio = counts[1] / counts[0]
    assert 2.5 < ratio < 3.6


def test_straw2_adjust_and_remove():
    b = Straw2Bucket(-1, "b", "host")
    b.add_item(0, 1.0)
    b.add_item(1, 1.0)
    b.adjust_weight(0, 2.0)
    assert b.weight == pytest.approx(3.0)
    b.remove_item(1)
    assert [i.id for i in b.items] == [0]
    with pytest.raises(ValueError):
        b.remove_item(99)
    with pytest.raises(ValueError):
        b.adjust_weight(99, 1.0)


def test_straw2_stability_on_item_addition():
    """Straw2's defining property: adding an item only steals inputs for
    itself; it never shuffles inputs between pre-existing items."""
    before = Straw2Bucket(-1, "b", "host")
    for i in range(4):
        before.add_item(i, 1.0)
    after = Straw2Bucket(-1, "b", "host")
    for i in range(5):
        after.add_item(i, 1.0)

    moved_wrongly = 0
    moved_to_new = 0
    for x in range(10_000):
        a, b_ = before.choose(x, 0), after.choose(x, 0)
        if a != b_:
            if b_ == 4:
                moved_to_new += 1
            else:
                moved_wrongly += 1
    assert moved_wrongly == 0
    # New item should receive roughly 1/5 of inputs.
    assert 0.15 < moved_to_new / 10_000 < 0.25


# ---------------------------------------------------------------- map


def test_map_returns_distinct_osds_across_hosts():
    cmap = build_map(hosts=4, osds_per_host=2)
    for x in range(500):
        osds = cmap.map_x("replicated_rule", x, 3)
        assert len(osds) == 3
        assert len(set(osds)) == 3
        hosts = {osd // 2 for osd in osds}
        assert len(hosts) == 3  # failure-domain separation


def test_map_deterministic():
    cmap = build_map()
    a = [cmap.map_x("replicated_rule", x, 2) for x in range(100)]
    b = [cmap.map_x("replicated_rule", x, 2) for x in range(100)]
    assert a == b


def test_map_single_replica():
    cmap = build_map(hosts=2, osds_per_host=1)
    for x in range(100):
        osds = cmap.map_x("replicated_rule", x, 1)
        assert len(osds) == 1


def test_map_distribution_roughly_uniform():
    cmap = build_map(hosts=4, osds_per_host=2)
    counts = collections.Counter()
    for x in range(8_000):
        for osd in cmap.map_x("replicated_rule", x, 2):
            counts[osd] += 1
    mean = sum(counts.values()) / len(counts)
    for osd, c in counts.items():
        assert abs(c - mean) / mean < 0.25, f"osd.{osd} skewed: {c} vs {mean}"


def test_out_device_excluded():
    cmap = build_map(hosts=3, osds_per_host=1)
    cmap.set_reweight(1, 0.0)
    for x in range(300):
        osds = cmap.map_x("replicated_rule", x, 2)
        assert 1 not in osds
        assert len(osds) == 2


def test_reweight_validation():
    cmap = build_map()
    with pytest.raises(ValueError):
        cmap.set_reweight(999, 0.5)
    with pytest.raises(ValueError):
        cmap.set_reweight(0, 1.5)


def test_insufficient_domains_returns_short():
    """2 hosts cannot satisfy 3 host-separated replicas."""
    cmap = build_map(hosts=2, osds_per_host=4)
    osds = cmap.map_x("replicated_rule", 42, 3)
    assert len(osds) == 2


def test_rebalancing_is_minimal_on_host_addition():
    """Adding a host moves only ~its fair share of PGs."""
    def mapping(hosts):
        cmap = build_map(hosts=hosts, osds_per_host=1)
        return {x: tuple(cmap.map_x("replicated_rule", x, 2))
                for x in range(4000)}

    before = mapping(4)
    after = mapping(5)
    moved = sum(
        1
        for x in before
        for osd in after[x]
        if osd not in before[x]
    )
    total_slots = 2 * 4000
    # Fair share for the new host is 2/5 of slots × (new host fraction);
    # allow generous margin but far less than a full reshuffle.
    assert moved / total_slots < 0.35


def test_duplicate_names_and_devices_rejected():
    cmap = CrushMap()
    cmap.add_bucket("default", "root")
    with pytest.raises(ValueError):
        cmap.add_bucket("default", "root")
    cmap.add_bucket("host0", "host")
    cmap.add_device("host0", 0)
    with pytest.raises(ValueError):
        cmap.add_device("host0", 0)
    with pytest.raises(ValueError):
        cmap.add_device("host0", -3)


def test_unknown_lookups_raise():
    cmap = CrushMap()
    with pytest.raises(ValueError):
        cmap.bucket("nope")
    with pytest.raises(ValueError):
        cmap.rule("nope")
    cmap.add_bucket("default", "root")
    with pytest.raises(ValueError):
        cmap.add_rule(CrushRule("r", "missing-root", [ChooseStep(0, "host")]))


def test_duplicate_rule_rejected():
    cmap = build_map()
    with pytest.raises(ValueError):
        cmap.add_rule(CrushMap.replicated_rule())


def test_uniform_bucket():
    cmap = CrushMap()
    bucket = cmap.add_bucket("default", "root", uniform=True)
    for i in range(4):
        bucket.add_item(i, 1.0)
        cmap._device_weights[i] = 1.0
        cmap._reweights[i] = 1.0
    counts = collections.Counter(bucket.choose(x, 0) for x in range(4000))
    mean = 1000
    for c in counts.values():
        assert abs(c - mean) / mean < 0.25


# ---------------------------------------------------------------- properties


@given(
    x=st.integers(min_value=0, max_value=2**31 - 1),
    num_rep=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=100, deadline=None)
def test_map_properties(x, num_rep):
    """For any input: results are distinct, valid, host-separated."""
    cmap = build_map(hosts=4, osds_per_host=2)
    osds = cmap.map_x("replicated_rule", x, num_rep)
    assert len(osds) == num_rep
    assert len(set(osds)) == len(osds)
    assert all(0 <= o < 8 for o in osds)
    hosts = [o // 2 for o in osds]
    assert len(set(hosts)) == len(hosts)
