"""Cross-engine digest matrix: every way of driving the event loop agrees.

The PR-9 engine work introduced three ways to dispatch the same heap —
the batched pure-Python loop (``Environment.run``), the single-step
specialization (``Environment.step``), and the optional compiled kernel
(``repro.sim._ckernel``) — plus a flattened-machine hot path underneath
all of them.  This module pins the equivalence claims:

* **reference × batched × compiled**: a full scenario replay produces
  byte-identical digests and traced fingerprints under the pre-batching
  reference dispatch (one horizon check + one ``step`` per event), the
  batched loop, and the compiled kernel, on seeds 0-2.
* **interleaving**: any hypothesis-drawn interleaving of ``step()`` and
  bounded ``run(until=...)`` calls lands on the same digest as one
  uninterrupted ``run()``.

The compiled-kernel cases build the extension on first use and skip
(rather than fail) on boxes with no C compiler — the pure engine is the
behavioral reference and is always exercised.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import run_scenario
from repro.sim import Environment, Event, Interrupt, Resource, StopSimulation
from repro.sim import compiled as sim_compiled
from repro.trace import Tracer, simulation_digest

from .test_perf import GOLDEN, GOLDEN_TRACED


def _run_reference(self, until=None):
    """The pre-batching dispatch loop: re-test the horizon before every
    pop and take exactly one event per iteration via ``step()``.

    ``step()`` is contractually identical to one iteration of the
    batched loop (same peak accounting, same recycling, same failure
    propagation), so this reference differs from ``run()`` only in
    *how* it walks the heap — which is precisely the claim under test.
    """
    stop_at = None
    if until is not None:
        if isinstance(until, Event):
            if until.callbacks is None:
                return until.value if until.ok else None
            until.callbacks.append(StopSimulation.callback)
        else:
            stop_at = float(until)
    horizon = float("inf") if stop_at is None else stop_at
    try:
        while self._queue:
            if self.peek() >= horizon:
                self._now = stop_at
                return None
            self.step()
    except StopSimulation as stop:
        return stop.args[0]
    if stop_at is not None:
        self._now = stop_at
    return None


def _compiled_available() -> bool:
    """Build (if needed) and load the C kernel; False when impossible."""
    try:
        from repro.engine_build import build

        build(quiet=True)
    except Exception:
        return False
    return sim_compiled.load()


@pytest.fixture
def engine(request):
    """Patch Environment.run to the requested dispatch for one test."""
    name = request.param
    if name == "batched":
        yield name
        return
    if name == "reference":
        Environment.run = _run_reference
        try:
            yield name
        finally:
            Environment.run = Environment._run_pure
        return
    assert name == "compiled"
    if not _compiled_available():
        pytest.skip("no C compiler / extension unavailable")
    assert sim_compiled.activate()
    try:
        yield name
    finally:
        sim_compiled.deactivate()


ENGINES = ["batched", "reference", "compiled"]


@pytest.mark.parametrize("engine", ENGINES, indirect=True)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_smoke_digest_and_fingerprint_match_across_engines(engine, seed):
    tracer = Tracer(seed=seed)
    env, _ = run_scenario("smoke", seed=seed, tracer=tracer)
    assert simulation_digest(env) == GOLDEN[("smoke", seed)]["digest"]
    assert env._seq == GOLDEN[("smoke", seed)]["events"]
    assert tracer.report().fingerprint() == GOLDEN_TRACED[seed]


@pytest.mark.parametrize("engine", ENGINES, indirect=True)
def test_fallback_faulty_digest_matches_across_engines(engine):
    """The fault path (interrupts, retries, failed events) through every
    dispatch variant — the digest covers the §4 robustness workload."""
    env, _ = run_scenario("fallback", seed=0)
    assert simulation_digest(env) == GOLDEN[("fallback", 0)]["digest"]
    assert env._peak_pending == 296


@pytest.mark.parametrize("engine", ENGINES, indirect=True)
def test_qos_digest_matches_across_engines(engine):
    env, _ = run_scenario("qos", seed=0)
    assert simulation_digest(env) == GOLDEN[("qos", 0)]["digest"]


# ---------------------------------------------------------- interleaving


def _contended_model(env: Environment) -> None:
    """A small workload with urgent kicks, contention, and same-tick
    batches — enough structure that a dispatch-order bug moves the
    digest."""
    res = Resource(env, capacity=2)

    def worker(env, idx):
        for lap in range(3):
            req = res.request()
            yield req
            try:
                yield env.timeout((idx + lap) % 4 * 0.25)
            finally:
                res.finish(req)
            yield env.timeout(0.5)

    def ticker(env):
        try:
            while True:
                yield env.sleep(0.75)
        except Interrupt:
            return

    for i in range(5):
        env.process(worker(env, i), name=f"w{i}")
    tick = env.process(ticker(env), name="tick")

    def stopper(env):
        yield env.timeout(9.0)
        tick.interrupt("done")

    env.process(stopper(env), name="stop")


#: Clock value both sides are advanced to after draining.  A bounded
#: ``run(until=T)`` that outlives the last event legitimately parks the
#: clock at ``T`` — which a single uninterrupted ``run()`` never does —
#: so both drivers finish with ``run(until=_FINAL_HORIZON)`` and the
#: digest comparison pins the event count and the event-time trajectory
#: without tripping over idle-clock placement.
_FINAL_HORIZON = 1000.0


def _digest_single_run() -> str:
    env = Environment()
    _contended_model(env)
    env.run()
    env.run(until=_FINAL_HORIZON)
    return simulation_digest(env)


@given(
    schedule=st.lists(
        st.one_of(
            st.integers(min_value=1, max_value=7),  # N single steps
            st.floats(min_value=0.1, max_value=3.0,  # bounded run
                      allow_nan=False, allow_infinity=False),
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=30, deadline=None)
def test_interleaved_step_and_run_equal_one_run(schedule):
    want = _digest_single_run()
    env = Environment()
    _contended_model(env)
    for action in schedule:
        if isinstance(action, int):
            for _ in range(action):
                if not env._queue:
                    break
                env.step()
        else:
            env.run(until=env.now + action)
    env.run()
    env.run(until=_FINAL_HORIZON)
    assert simulation_digest(env) == want


# ------------------------------------------------------------- engine CLI


def _bench_doc(tmp_path, **overrides):
    """A minimal BENCH_perf_engine.json with one smoke/seed-0 row."""
    row = {
        "scenario": "smoke",
        "seed": 0,
        "digest": GOLDEN[("smoke", 0)]["digest"],
        "pure_events_per_sec": 1.0,  # floor trivially met
    }
    row.update(overrides)
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"runs_compiled": [row]}))
    return path


def test_cli_engine_build_then_check_passes(capsys, tmp_path):
    from repro.cli import main

    if not _compiled_available():
        pytest.skip("no C compiler / extension unavailable")
    assert main(["engine", "build"]) == 0
    bench = _bench_doc(tmp_path)
    code = main(["engine", "check", "--scenario", "smoke",
                 "--repeats", "1", "--bench", str(bench)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "digests byte-identical" in out
    assert GOLDEN[("smoke", 0)]["digest"] in out


def test_cli_engine_check_committed_digest_mismatch_exits_3(capsys, tmp_path):
    from repro.cli import main

    if not _compiled_available():
        pytest.skip("no C compiler / extension unavailable")
    bench = _bench_doc(tmp_path, digest="not-the-digest")
    code = main(["engine", "check", "--scenario", "smoke",
                 "--repeats", "1", "--bench", str(bench)])
    assert code == 3
    assert "MISMATCH" in capsys.readouterr().out


def test_cli_engine_check_throughput_regression_exits_4(capsys, tmp_path):
    from repro.cli import main

    if not _compiled_available():
        pytest.skip("no C compiler / extension unavailable")
    # an impossibly fast committed figure forces the floor above any
    # real measurement
    bench = _bench_doc(tmp_path, pure_events_per_sec=1e15)
    code = main(["engine", "check", "--scenario", "smoke",
                 "--repeats", "1", "--bench", str(bench)])
    assert code == 4
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_engine_clean_then_rebuild(capsys):
    from repro.cli import main
    from repro.engine_build import artifact_path, find_compiler

    if find_compiler() is None:
        pytest.skip("no C compiler")
    assert main(["engine", "clean"]) == 0
    assert not artifact_path().exists()
    assert main(["engine", "build"]) == 0
    assert artifact_path().exists()
    out = capsys.readouterr().out
    assert "built" in out


def test_interleaved_step_with_compiled_run_equals_one_run():
    """step() stays pure Python even when run() is compiled; mixing them
    mid-simulation must still land on the reference digest."""
    if not _compiled_available():
        pytest.skip("no C compiler / extension unavailable")
    want = _digest_single_run()  # pure, uninterrupted
    assert sim_compiled.activate()
    try:
        env = Environment()
        _contended_model(env)
        for _ in range(50):
            if not env._queue:
                break
            env.step()
        env.run(until=env.now + 1.5)
        for _ in range(75):
            if not env._queue:
                break
            env.step()
        env.run()
        env.run(until=_FINAL_HORIZON)
    finally:
        sim_compiled.deactivate()
    assert simulation_digest(env) == want
