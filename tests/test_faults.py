"""Tests for the unified fault-injection subsystem (repro.faults) and
the recovery machinery it exercises: RPC timeout/retry, the fallback
probe guard, and per-layer failure accounting.

Seeded tests honour ``REPRO_FAULT_SEED`` (CI runs a small seed matrix);
every assertion must hold for any seed.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import run_rados_bench
from repro.cluster import DocephProfile, build_doceph_cluster
from repro.core import (
    CommChannel,
    DocaDma,
    FallbackController,
    DmaPipeline,
    RpcChannel,
)
from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    format_fault_specs,
    parse_fault_specs,
)
from repro.hw import (
    BandwidthPipe,
    ClusterNode,
    CpuComplex,
    DmaEngine,
    DmaError,
    Network,
    SimThread,
    SsdDevice,
    StorageError,
)
from repro.sim import Environment
from repro.util import BufferList

MB = 1 << 20

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


# --------------------------------------------------------------- spec parsing


def test_parse_single_layer_defaults():
    (spec,) = parse_fault_specs("dma")
    assert spec.layer == "dma"
    assert spec.kind == "error"  # layer default kind
    assert spec.probability == 1.0
    assert spec.window is None and spec.nth is None and spec.burst == 1


def test_parse_full_plan():
    specs = parse_fault_specs(
        "dma,p=0.02;rpc:reply_loss,nth=3,burst=2;"
        "net:degrade,window=4-5,factor=8;storage,nodes=node0|node1"
    )
    assert [s.layer for s in specs] == ["dma", "rpc", "net", "storage"]
    assert specs[0].probability == 0.02
    assert specs[1].kind == "reply_loss"
    assert specs[1].nth == 3 and specs[1].burst == 2
    assert specs[2].window == (4.0, 5.0) and specs[2].factor == 8.0
    assert specs[3].nodes == ("node0", "node1")


def test_parse_rejects_malformed():
    with pytest.raises(ValueError):
        parse_fault_specs("")
    with pytest.raises(ValueError):
        parse_fault_specs("dma,p")  # option without value
    with pytest.raises(ValueError):
        parse_fault_specs("dma,window=5")  # window needs start-end
    with pytest.raises(ValueError):
        parse_fault_specs("dma,bogus=1")
    with pytest.raises(ValueError):
        parse_fault_specs("warp")  # unknown layer
    with pytest.raises(ValueError):
        parse_fault_specs("dma:reply_loss")  # kind from another layer


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(layer="dma", probability=1.5)
    with pytest.raises(ValueError):
        FaultSpec(layer="dma", window=(5.0, 5.0))
    with pytest.raises(ValueError):
        FaultSpec(layer="dma", nth=0)
    with pytest.raises(ValueError):
        FaultSpec(layer="dma", burst=0)
    with pytest.raises(ValueError):
        FaultSpec(layer="net", factor=0.5)
    for layer, kinds in FAULT_KINDS.items():
        for kind in kinds:
            if kind == "partition":
                # partitions are sustained windows between node groups
                FaultSpec(layer=layer, kind=kind, window=(1.0, 2.0),
                          nodes=("node0",))
                with pytest.raises(ValueError):
                    FaultSpec(layer=layer, kind=kind)  # needs window+nodes
            else:
                FaultSpec(layer=layer, kind=kind)  # all valid combos build


def test_parse_adversary_kinds_round_trip():
    text = (
        "net:corrupt,p=0.2;net:dup,p=0.1,burst=2;net:reorder,nth=3;"
        "net:truncate,p=0.05;net:jitter,p=0.3,delay=0.002"
    )
    specs = parse_fault_specs(text)
    assert [s.kind for s in specs] == [
        "corrupt", "dup", "reorder", "truncate", "jitter",
    ]
    assert all(s.layer == "net" for s in specs)
    # format → parse is the identity (the corpus relies on this)
    assert tuple(parse_fault_specs(format_fault_specs(specs))) == tuple(specs)


def test_pipe_injector_excludes_adversary_kinds():
    """Frame-level adversary specs must never leak into the chunk-level
    NIC pipe injector (and vice versa): each consumes from its own
    stream and acts at a different layer of the model."""
    plan = FaultPlan.parse(
        "net:corrupt,p=1;net:jitter,p=1,delay=0.001;"
        "net:degrade,window=0-1,factor=2",
        seed=SEED,
    )
    pipe = plan.injector("net", "node0")
    assert [s.kind for s in pipe.specs] == ["degrade"]
    adversary = plan.adversary_injector("node0")
    assert sorted(s.kind for s in adversary.specs) == ["corrupt", "jitter"]


# --------------------------------------------------------------- injector semantics


def test_injector_window_gates_firing():
    plan = FaultPlan(seed=SEED, specs=[
        FaultSpec(layer="dma", window=(2.0, 4.0)),
    ])
    inj = plan.injector("dma", "n")
    assert inj.fire(1.9) is None
    assert inj.fire(2.0) is not None  # inclusive start
    assert inj.fire(3.999) is not None
    assert inj.fire(4.0) is None  # exclusive end
    assert plan.injected == {"dma.error": 2}


def test_injector_nth_and_burst():
    plan = FaultPlan(seed=SEED, specs=[
        FaultSpec(layer="dma", nth=3, burst=2),
    ])
    inj = plan.injector("dma", "n")
    fired = [inj.fire(0.0) is not None for _ in range(6)]
    # op 3 (nth) and op 4 (burst continuation) fail, nothing else
    assert fired == [False, False, True, True, False, False]
    assert plan.injected["dma.error"] == 2


def test_injector_kind_filtering():
    plan = FaultPlan(seed=SEED, specs=[
        FaultSpec(layer="rpc", kind="reply_loss", nth=1),
    ])
    inj = plan.injector("rpc", "n")
    assert inj.fire(0.0, kind="request_loss") is None
    assert inj.fire(0.0, kind="reply_loss") is not None
    assert inj.fire(0.0, kind="reply_loss") is None  # nth already consumed


def test_injector_node_scoping():
    plan = FaultPlan(seed=SEED, specs=[
        FaultSpec(layer="dma", nodes=("node1",)),
    ])
    assert plan.injector("dma", "node0").fire(0.0) is None
    assert plan.injector("dma", "node1").fire(0.0) is not None


def test_plan_determinism_at_injector_level():
    """Two plans with the same seed and specs fire identically."""
    mk = lambda: FaultPlan(seed=SEED, specs=[
        FaultSpec(layer="dma", probability=0.3),
    ])
    a, b = mk(), mk()
    seq_a = [a.injector("dma", "n").fire(0.0) is not None
             for _ in range(200)]
    seq_b = [b.injector("dma", "n").fire(0.0) is not None
             for _ in range(200)]
    assert seq_a == seq_b
    assert a.snapshot() == b.snapshot()
    assert 0 < sum(seq_a) < 200  # p=0.3 actually fires sometimes


def test_injector_streams_independent_per_scope():
    """node0's schedule must not shift when node1 starts firing ops."""
    plan_a = FaultPlan(seed=SEED, specs=[FaultSpec("dma", probability=0.3)])
    seq_solo = [plan_a.injector("dma", "node0").fire(0.0) is not None
                for _ in range(100)]
    plan_b = FaultPlan(seed=SEED, specs=[FaultSpec("dma", probability=0.3)])
    inj0 = plan_b.injector("dma", "node0")
    inj1 = plan_b.injector("dma", "node1")
    seq_interleaved = []
    for _ in range(100):
        inj1.fire(0.0)  # interleave traffic on another node
        seq_interleaved.append(inj0.fire(0.0) is not None)
    assert seq_solo == seq_interleaved


# --------------------------------------------------------------- hardware layers


def test_dma_layer_raises_and_accounts_failed_bytes():
    env = Environment()
    dma = DmaEngine(env, "d", bandwidth=1e9, setup_latency=1e-3)
    plan = FaultPlan(seed=SEED, specs=[FaultSpec("dma", nth=2)])
    plan.attach_dma(dma, "n")

    def work():
        yield from dma.transfer(1 * MB)
        with pytest.raises(DmaError):
            yield from dma.transfer(1 * MB)
        yield from dma.transfer(1 * MB)

    p = env.process(work())
    env.run(until=p)
    assert dma.failures == 1
    assert dma.failed_bytes == 1 * MB
    assert dma.bytes_transferred == 2 * MB
    assert plan.injected_bytes["dma.error"] == 1 * MB


def test_dma_busy_time_conservation_under_faults():
    """busy_time == setup_time + (transferred + failed) / bandwidth —
    failed transfers hold the channel exactly as long as clean ones."""
    env = Environment()
    bw = 1e9
    dma = DmaEngine(env, "d", bandwidth=bw, setup_latency=1e-3)
    plan = FaultPlan(seed=SEED, specs=[FaultSpec("dma", probability=0.5)])
    plan.attach_dma(dma, "n")

    def work():
        for _ in range(40):
            try:
                yield from dma.transfer(1 * MB)
            except DmaError:
                pass

    p = env.process(work())
    env.run(until=p)
    assert dma.failures > 0 and dma.transfers > 0  # p=0.5 hit both ways
    expected = dma.setup_time + (dma.bytes_transferred + dma.failed_bytes) / bw
    assert dma.busy_time == pytest.approx(expected, rel=1e-9)
    assert dma.failures + dma.transfers == 40
    assert dma.bytes_transferred + dma.failed_bytes == 40 * MB


def test_storage_layer_raises_storage_error():
    env = Environment()
    ssd = SsdDevice(env, "s")
    plan = FaultPlan(seed=SEED, specs=[FaultSpec("storage", nth=1)])
    plan.attach_storage(ssd, "n")

    def work():
        with pytest.raises(StorageError):
            yield from ssd.write(1 * MB)
        yield from ssd.write(1 * MB)

    p = env.process(work())
    env.run(until=p)
    assert ssd.io_errors == 1
    assert ssd.failed_bytes == 1 * MB
    assert ssd.writes == 1  # only the successful write counts
    assert ssd.bytes_written == 1 * MB
    assert ssd.busy_time > 0  # the failed I/O still held the device


def test_net_degrade_stretches_serialization():
    def timed_transmit(plan):
        env = Environment()
        pipe = BandwidthPipe(env, "p", bandwidth_bps=8e9)
        if plan is not None:
            plan.attach_net(
                type("N", (), {"tx": pipe, "rx": pipe})(), "n"
            )

        def work():
            yield from pipe.transmit(4 * MB)

        p = env.process(work())
        env.run(until=p)
        return env.now, pipe

    clean_time, _ = timed_transmit(None)
    plan = FaultPlan(seed=SEED, specs=[
        FaultSpec("net", kind="degrade", factor=4.0),
    ])
    slow_time, pipe = timed_transmit(plan)
    assert slow_time == pytest.approx(4.0 * clean_time)
    assert pipe.degraded_chunks == 16  # 4 MB / 256 KB chunks, all hit
    assert pipe.bytes_transferred == 4 * MB


# --------------------------------------------------------------- rpc reliability


def make_rpc(env, profile=None):
    profile = profile or DocephProfile()
    network = Network(env)
    host_cpu = CpuComplex(env, "n.host", cores=8)
    dpu_cpu = CpuComplex(env, "n.dpu", cores=8, perf=0.45)
    ssd = SsdDevice(env, "n.ssd")
    dma = DmaEngine(env, "n.dma")
    node = ClusterNode(
        env, network, "n", host_cpu, ssd, nic_bandwidth=100e9,
        tcp=profile.tcp, dpu_cpu=dpu_cpu, dma=dma,
    )
    channel = RpcChannel(node, profile)

    def echo(req, t):
        req.reply = {"ok": True}
        if False:
            yield

    channel.register_handler("echo", echo)
    thread = SimThread(node.dpu_cpu, "caller", "proxy")
    return node, channel, thread


def _one_call(env, channel, thread):
    def work():
        req = yield from channel.call("echo", BufferList(), thread)
        return req.reply

    p = env.process(work())
    env.run(until=p)
    return p.value


def test_rpc_reply_loss_recovers_via_timeout_and_retry():
    """A lost reply must not hang the caller: the attempt times out and
    the retry succeeds (at-least-once handler execution)."""
    env = Environment()
    profile = DocephProfile(rpc_timeout_seconds=0.5)
    node, channel, thread = make_rpc(env, profile)
    plan = FaultPlan(seed=SEED, specs=[
        FaultSpec("rpc", kind="reply_loss", nth=1),
    ])
    plan.attach_rpc(channel, "n")

    reply = _one_call(env, channel, thread)
    assert reply == {"ok": True}
    assert channel.reply_losses == 1
    assert channel.timeouts == 1
    assert channel.retries == 1
    assert channel.calls == 1
    # the retry was answered from the dedup cache, not re-executed
    assert channel.duplicates_suppressed == 1
    assert env.now >= 0.5  # the first attempt's timeout elapsed


def test_rpc_request_loss_recovers_and_backs_off():
    env = Environment()
    profile = DocephProfile(rpc_timeout_seconds=0.5, rpc_backoff_factor=2.0)
    node, channel, thread = make_rpc(env, profile)
    plan = FaultPlan(seed=SEED, specs=[
        FaultSpec("rpc", kind="request_loss", nth=1, burst=2),
    ])
    plan.attach_rpc(channel, "n")

    reply = _one_call(env, channel, thread)
    assert reply == {"ok": True}
    assert channel.request_losses == 2
    assert channel.timeouts == 2
    assert channel.retries == 2
    # exponential backoff: attempts waited 0.5 then 1.0 seconds
    assert env.now >= 0.5 + 1.0


def test_rpc_exhausted_retries_raise_instead_of_hanging():
    from repro.core import RpcError

    env = Environment()
    profile = DocephProfile(rpc_timeout_seconds=0.25, rpc_max_retries=2)
    node, channel, thread = make_rpc(env, profile)
    plan = FaultPlan(seed=SEED, specs=[
        FaultSpec("rpc", kind="request_loss"),  # p=1: every attempt lost
    ])
    plan.attach_rpc(channel, "n")

    def work():
        with pytest.raises(RpcError, match="no reply"):
            yield from channel.call("echo", BufferList(), thread)

    p = env.process(work())
    env.run(until=p)
    assert channel.timeouts == 3  # initial + 2 retries
    assert channel.errors == 1


def test_rpc_delay_fault_slows_delivery():
    env = Environment()
    node, channel, thread = make_rpc(env)
    base_env = Environment()
    base_node, base_channel, base_thread = make_rpc(base_env)
    _one_call(base_env, base_channel, base_thread)

    plan = FaultPlan(seed=SEED, specs=[
        FaultSpec("rpc", kind="delay", nth=1, delay=0.2),
    ])
    plan.attach_rpc(channel, "n")
    _one_call(env, channel, thread)
    assert channel.delays == 1
    assert env.now == pytest.approx(base_env.now + 0.2)


def test_rpc_caller_charged_for_reply_receive():
    """Regression: RpcChannel.call must charge the caller's complex for
    receiving the reply (kernel socket read), not just for the send."""
    env = Environment()
    node, channel, thread = make_rpc(env)
    tcp = channel.profile.tcp
    _one_call(env, channel, thread)
    busy = node.dpu_cpu.accounting.busy_by_category.get("proxy", 0.0)
    wire = 32  # empty payload + header
    # send path alone would be less than send + receive; the receive
    # charge is what the old code dropped.
    assert busy >= tcp.send_cpu(wire) + tcp.recv_cpu(64)
    ctx = node.dpu_cpu.accounting.ctx_by_category.get("proxy", 0)
    assert ctx >= tcp.send_ctx(wire) + tcp.recv_ctx(64)


# --------------------------------------------------------------- probe guard


def make_pipeline(env, plan=None, cooldown=0.5, dma_kwargs=None):
    profile = DocephProfile()
    network = Network(env)
    host_cpu = CpuComplex(env, "n.host", cores=8)
    dpu_cpu = CpuComplex(env, "n.dpu", cores=8, perf=0.45)
    ssd = SsdDevice(env, "n.ssd")
    dma = DmaEngine(env, "n.dma", **(dma_kwargs or {}))
    node = ClusterNode(
        env, network, "n", host_cpu, ssd, nic_bandwidth=100e9,
        tcp=profile.tcp, dpu_cpu=dpu_cpu, dma=dma,
    )
    channel = RpcChannel(node, profile)

    def bulk_handler(req, t):
        req.reply = {"ok": True}
        if False:
            yield

    channel.register_handler("bulk", bulk_handler)
    if plan is not None:
        plan.attach_dma(dma, "n")
    comm = CommChannel(node, profile.comm_channel_negotiate_latency)
    doca = DocaDma(node, comm, mr_cache_enabled=True)
    fb = FallbackController(cooldown_seconds=cooldown)
    stage_thread = SimThread(node.dpu_cpu, "stage", "proxy")
    pipe = DmaPipeline(
        env, doca, channel, fb,
        stage_thread=stage_thread,
        memcpy_bandwidth=3e9,
        segment_bytes=2 * MB,
        n_buffers=4,
        pipelined=True,
    )
    return node, pipe, fb


def test_exactly_one_probe_per_expiry_with_8_writers():
    """All concurrent writers see probe_due() at cooldown expiry, but
    the guard lets exactly one through; the rest stay on RPC."""
    env = Environment()
    # slow DMA setup so the probe window is long enough that other
    # writers provably arrive while it is in flight
    plan = FaultPlan(seed=SEED, specs=[FaultSpec("dma", nth=1)])
    node, pipe, fb = make_pipeline(
        env, plan, cooldown=0.5,
        dma_kwargs={"setup_latency": 50e-3, "bandwidth": 1e9},
    )
    threads = [SimThread(node.dpu_cpu, f"w{i}", "proxy") for i in range(8)]

    def writer(thread):
        while env.now < 2.0:
            yield from pipe.push(2 * MB, thread)

    procs = [env.process(writer(t)) for t in threads]
    for p in procs:
        env.run(until=p)

    assert fb.failures == 1  # the nth=1 injected failure
    # exactly one probe revalidated the path for the one cooldown expiry
    assert fb.probes_attempted == 1
    assert fb.probes_succeeded == 1
    # ... and the guard provably turned concurrent duplicates away
    assert fb.probes_suppressed >= 1
    assert len(fb.recovery_latencies) == 1
    assert fb.recovery_latencies[0] >= 0.5  # at least the cooldown


def test_failed_probe_restarts_cooldown_and_later_probe_rearms():
    env = Environment()
    # ops: #1 fails (trips cooldown), #2 is the first probe -> fails,
    # #3 is the second probe -> succeeds
    plan = FaultPlan(seed=SEED, specs=[FaultSpec("dma", nth=1, burst=2)])
    node, pipe, fb = make_pipeline(env, plan, cooldown=0.2)
    thread = SimThread(node.dpu_cpu, "w", "proxy")

    def work():
        while env.now < 2.0:
            yield from pipe.push(2 * MB, thread)

    p = env.process(work())
    env.run(until=p)
    assert fb.failures == 1
    assert fb.probes_attempted == 2
    assert fb.probes_succeeded == 1
    assert not fb.probe_inflight()
    # single outage, recovered once, spanning both cooldowns
    assert len(fb.recovery_latencies) == 1
    assert fb.recovery_latencies[0] >= 0.4


# --------------------------------------------------------------- state machine


@given(st.lists(
    st.sampled_from(["fail", "probe_ok", "probe_fail", "tick"]),
    max_size=50,
))
@settings(max_examples=200, deadline=None)
def test_fallback_controller_state_machine(ops):
    """Invariants for any event sequence: DMA never allowed during
    cooldown or while a probe is owed; the probe slot is exclusive; only
    a successful probe re-arms DMA."""
    fb = FallbackController(cooldown_seconds=1.0)
    now = 0.0
    for op in ops:
        now += 0.4
        if op == "fail":
            fb.record_failure(now)
            assert not fb.dma_allowed(now)
        elif op in ("probe_ok", "probe_fail"):
            if fb.begin_probe(now):
                # the slot is exclusive until record_probe releases it
                assert fb.probe_inflight()
                assert not fb.begin_probe(now)
                fb.record_probe(op == "probe_ok", now)
                assert not fb.probe_inflight()
                if op == "probe_ok":
                    assert fb.dma_allowed(now)  # success re-arms
                else:
                    assert not fb.dma_allowed(now)  # failure: new cooldown
        # global invariants
        if fb.in_cooldown(now):
            assert not fb.dma_allowed(now)
            assert not fb.probe_due(now)
        if fb.probe_due(now):
            assert not fb.dma_allowed(now)
        if fb.dma_allowed(now):
            assert not fb.probe_due(now)
    assert fb.probes_succeeded <= fb.probes_attempted
    assert len(fb.recovery_latencies) == fb.probes_succeeded


# --------------------------------------------------------------- end to end


def _bench_with_plan(plan, duration=4.0, clients=4):
    env = Environment()
    profile = DocephProfile(cooldown_seconds=0.5, rpc_timeout_seconds=0.5)
    cluster = build_doceph_cluster(env, profile, fault_plan=plan)
    return run_rados_bench(
        cluster, object_size=1 * MB, clients=clients,
        duration=duration, warmup=1.0,
    )


def test_e2e_rpc_reply_loss_does_not_stall_the_bench():
    plan = FaultPlan(seed=SEED, specs=[
        FaultSpec("rpc", kind="reply_loss", nth=5, burst=2),
    ])
    result = _bench_with_plan(plan)
    assert result.completed_ops > 0
    report = result.faults
    # nth/burst fire per node scope: 2 losses on each of the 2 nodes
    assert report.rpc_reply_losses == 4
    assert report.injected["rpc.reply_loss"] == 4
    assert report.rpc_timeouts >= 4
    assert report.rpc_retries >= 4
    assert report.rpc_duplicates_suppressed >= 4
    assert report.rpc_errors == 0  # retries recovered every loss


def test_e2e_same_seed_reproduces_bytewise():
    """The tentpole's acceptance bar: the same plan seed twice yields
    byte-identical fault counters AND bench metrics."""
    mk = lambda: FaultPlan(seed=SEED, specs=[
        FaultSpec("dma", probability=0.2),
        FaultSpec("rpc", kind="reply_loss", probability=0.02),
    ])
    r1 = _bench_with_plan(mk())
    r2 = _bench_with_plan(mk())
    assert r1.faults.as_dict() == r2.faults.as_dict()
    assert r1.faults.total_injected > 0
    assert r1.completed_ops == r2.completed_ops
    assert r1.iops == r2.iops
    assert r1.avg_latency == r2.avg_latency
    assert r1.latencies == r2.latencies
    assert r1.host_utilization_pct == r2.host_utilization_pct


def test_e2e_dma_fault_rate_shorthand_still_works():
    """The legacy DocephProfile(dma_fault_rate=...) knob now routes
    through a FaultPlan built by the cluster builder."""
    env = Environment()
    profile = DocephProfile(dma_fault_rate=1.0, cooldown_seconds=0.2)
    cluster = build_doceph_cluster(env, profile)
    assert cluster.fault_plan is not None
    (spec,) = cluster.fault_plan.specs
    assert spec.layer == "dma" and spec.probability == 1.0
    for node in cluster.nodes:
        assert node.dma.fault_injector is not None


def test_e2e_fault_free_run_reports_all_zero():
    result = _bench_with_plan(None, duration=2.0)
    report = result.faults
    assert report.total_injected == 0
    assert report.dma_failures == 0
    assert report.fallback_segments == 0
    assert report.rpc_timeouts == 0
    assert report.storage_io_errors == 0
    assert report.net_degraded_chunks == 0
