"""repro.fuzz tests: generator determinism, coverage monotonicity,
shrinker minimality on a seeded violation fixture, corpus round-trip,
and the committed regression corpus replaying clean.

The loop-level tests inject a synthetic executor (``ExecuteFn``) so the
search/shrink machinery is exercised without paying for real chaos
runs; the corpus test runs the real executor once per committed entry.
"""

import pathlib
from dataclasses import dataclass

import pytest

from repro.faults import FaultSpec
from repro.fuzz import (
    SOAK_STATE_VERSION,
    CoverageMap,
    Fuzzer,
    Scenario,
    ScenarioGenerator,
    execute_scenario,
    load_soak_state,
    run_soak,
    scenario_from_text,
    scenario_to_text,
    shrink,
    violation_signature,
)

REPO = pathlib.Path(__file__).resolve().parent.parent
CORPUS = REPO / "corpus"


# ------------------------------------------------------------- generator


def test_generator_determinism():
    """Same seed → identical scenario sequence; different seed diverges."""
    g1, g2 = ScenarioGenerator(7), ScenarioGenerator(7)
    seq1 = [g1.random_scenario() for _ in range(40)]
    seq2 = [g2.random_scenario() for _ in range(40)]
    assert seq1 == seq2
    g3 = ScenarioGenerator(8)
    assert [g3.random_scenario() for _ in range(40)] != seq1


def test_mutation_determinism_and_directedness():
    """Mutation replays bit-identically, and with an empty coverage map
    it (eventually) aims at uncovered target keys."""
    parent = Scenario(mode="baseline", clients=1)
    cov = CoverageMap()
    g1, g2 = ScenarioGenerator(3), ScenarioGenerator(3)
    m1 = [g1.mutate(parent, cov) for _ in range(30)]
    m2 = [g2.mutate(parent, cov) for _ in range(30)]
    assert m1 == m2
    # at least one directed mutation added a fault spec or an incident
    assert any(m.specs != parent.specs or m.incidents > parent.incidents
               or m.mode != parent.mode for m in m1)


# -------------------------------------------------------------- coverage


def test_coverage_monotonic_and_rarity():
    cm = CoverageMap()
    assert cm.add(["b", "a", "a"]) == ["a", "b"]  # sorted, deduped
    assert len(cm) == 2
    assert cm.add(["a"]) == []  # nothing new, size never shrinks
    assert len(cm) == 2
    assert cm.add(["c"]) == ["c"]
    assert len(cm) == 3
    # "a" hit twice, "c" once: rarer keys weigh more
    assert cm.rarity(["c"]) > cm.rarity(["a"])
    assert cm.rarity(["missing"]) == 0.0


# ------------------------------------------------------------- round-trip


def test_scenario_text_roundtrip():
    scenarios = [
        Scenario(),
        Scenario(
            mode="doceph", clients=2, object_size=1 << 19, duration=1.5,
            think_time=0.05, crashes=2, partitions=1, chaos_seed=17,
            fault_seed=3,
            specs=(
                FaultSpec(layer="rpc", kind="reply_loss",
                          probability=0.2, burst=2),
                FaultSpec(layer="net", kind="partition",
                          window=(1.0, 3.0), nodes=("node1",)),
            ),
        ),
    ]
    for scenario in scenarios:
        text = scenario_to_text(
            scenario, comments=["violation signature: missing"]
        )
        assert scenario_from_text(text) == scenario


def test_scenario_text_rejects_garbage():
    with pytest.raises(ValueError):
        scenario_from_text("mode=baseline\nbogus_field=1\n")
    with pytest.raises(ValueError):
        scenario_from_text("this is not a scenario\n")
    with pytest.raises(ValueError):
        scenario_from_text("mode=warp9\n")


# ------------------------------------------------- synthetic executor SUT


@dataclass(frozen=True)
class _FakeOutcome:
    scenario: Scenario
    violations: tuple
    coverage: frozenset
    fingerprint: str
    aborted: str = ""
    writes_acked: int = 10
    writes_failed: int = 0


def _seeded_bug_executor(scenario: Scenario) -> _FakeOutcome:
    """A deliberately buggy system under test: any scenario combining a
    net-layer fault with at least one crash 'loses' an acked write.
    Everything else about the outcome is a pure function of the
    scenario, like the real executor."""
    coverage = {f"mode.{scenario.mode}"}
    coverage.update(
        f"fault.{spec.layer}.{spec.kind}" for spec in scenario.specs
    )
    if scenario.crashes:
        coverage.add("chaos.crash")
    if scenario.partitions:
        coverage.add("chaos.partition")
    violations = ()
    if scenario.crashes >= 1 and any(
        spec.layer == "net" for spec in scenario.specs
    ):
        violations = ("obj-3: acked write missing (stat result -2)",)
    return _FakeOutcome(
        scenario=scenario,
        violations=violations,
        coverage=frozenset(coverage),
        fingerprint="fake" if not violations else "fake-viol",
    )


def test_shrinker_minimality_on_seeded_fixture():
    """The shrinker reduces a fat failing scenario to the 1-minimal
    core: exactly the net spec + one crash at minimum workload shape."""
    fat = Scenario(
        mode="doceph", clients=2, object_size=1 << 20, duration=2.0,
        think_time=0.1, crashes=2, partitions=1, chaos_seed=99,
        fault_seed=42,
        specs=(
            FaultSpec(layer="rpc", kind="reply_loss", probability=0.3),
            FaultSpec(layer="net", kind="degrade", window=(1.0, 2.0),
                      factor=4.0),
            FaultSpec(layer="dma", kind="error", probability=0.1),
        ),
    )
    signature = violation_signature(_seeded_bug_executor(fat).violations)
    assert signature == "missing"

    executions = 0

    def still_fails(candidate: Scenario) -> bool:
        nonlocal executions
        executions += 1
        outcome = _seeded_bug_executor(candidate)
        return violation_signature(outcome.violations) == signature

    result = shrink(fat, still_fails)
    minimal = result.scenario
    # 1-minimal: the failing core survives, everything deletable is gone
    assert [spec.layer for spec in minimal.specs] == ["net"]
    assert minimal.crashes == 1
    assert minimal.partitions == 0
    assert minimal.clients == 1
    assert minimal.object_size == 1 << 16
    assert minimal.duration == 0.5
    assert result.executions == executions
    assert not result.budget_exhausted
    # the minimal scenario still reproduces, and every single further
    # deletion breaks reproduction
    assert still_fails(minimal)
    assert not still_fails(minimal.with_(specs=()))
    assert not still_fails(minimal.with_(crashes=0))


def test_fuzzer_finds_shrinks_and_writes_corpus(tmp_path):
    """End-to-end loop against the buggy SUT: the violation is found,
    shrunk, serialized to the corpus, and a second session replays the
    corpus entry first and reports the regression."""
    fuzzer = Fuzzer(
        seed=5, corpus_dir=tmp_path, execute=_seeded_bug_executor
    )
    report = fuzzer.run(iterations=60)
    assert not report.passed
    assert report.violations
    record = report.violations[0]
    assert record.signature == "missing"
    minimal = scenario_from_text(record.scenario_text)
    assert [spec.layer for spec in minimal.specs] == ["net"]
    assert minimal.crashes == 1 and minimal.partitions == 0
    plans = sorted(tmp_path.glob("*.plan"))
    assert len(plans) == 1
    assert scenario_from_text(plans[0].read_text()) == minimal
    # coverage strictly grew at least once and never shrank
    sizes = [size for _i, size in report.progression]
    assert sizes == sorted(sizes)
    assert sizes[-1] > 0

    # same seed, same corpus, same executor → identical session.  Each
    # run may write new entries back, so give both sessions their own
    # copy of the same corpus snapshot.
    snap_a, snap_b = tmp_path / "snap_a", tmp_path / "snap_b"
    for snap in (snap_a, snap_b):
        snap.mkdir()
        for plan in plans:
            (snap / plan.name).write_text(plan.read_text())
    again = Fuzzer(
        seed=5, corpus_dir=snap_a, execute=_seeded_bug_executor
    ).run(iterations=60)
    third = Fuzzer(
        seed=5, corpus_dir=snap_b, execute=_seeded_bug_executor
    ).run(iterations=60)
    assert again.fingerprint() == third.fingerprint()
    # the corpus entry still violates under the buggy SUT → regression
    assert again.corpus_failures
    assert again.corpus_failures[0].signature == "missing"
    assert not again.passed


def test_fuzz_report_fingerprint_excludes_wallclock():
    fuzzer = Fuzzer(seed=1, execute=_seeded_bug_executor)
    report = fuzzer.run(iterations=10)
    fp = report.fingerprint()
    report.wall_s = 123.456
    assert report.fingerprint() == fp


# ------------------------------------------------------------ soak sessions


def test_soak_checkpoint_accumulates_across_invocations(tmp_path):
    """Two consecutive soak invocations share one checkpoint: session
    seeds advance, coverage / queue / shrunk signatures persist, and
    the totals accumulate."""
    state = tmp_path / "soak.json"
    corpus = tmp_path / "corpus"
    first = run_soak(base_seed=5, time_budget=60.0, state_path=state,
                     iterations=60, execute=_seeded_bug_executor,
                     corpus_dir=corpus)
    assert (first.session_index, first.session_seed) == (0, 5)
    assert first.total_sessions == 1
    assert first.new_keys > 0
    assert not first.passed  # the seeded bug was found and shrunk
    data = load_soak_state(state)
    assert data["version"] == SOAK_STATE_VERSION
    assert data["sessions"] == 1
    assert "missing" in data["seen_signatures"]
    assert sorted(corpus.glob("*.plan"))

    second = run_soak(base_seed=5, time_budget=60.0, state_path=state,
                      iterations=60, execute=_seeded_bug_executor,
                      corpus_dir=corpus)
    assert (second.session_index, second.session_seed) == (1, 6)
    assert second.total_sessions == 2
    assert second.total_iterations == (
        first.report.iterations_run + second.report.iterations_run
    )
    data2 = load_soak_state(state)
    assert data2["sessions"] == 2
    # coverage keys only accumulate; the shrunk signature is remembered
    assert set(data["coverage"]) <= set(data2["coverage"])
    assert "missing" in data2["seen_signatures"]
    assert len(data2["queue"]) <= 64
    for text, keys in data2["queue"]:
        scenario_from_text(text)  # every persisted parent replays
        assert keys == sorted(keys)
    assert [h["session"] for h in data2["history"]] == [0, 1]
    assert all(h["fingerprint"] for h in data2["history"])


def test_soak_state_ignored_for_different_base_seed(tmp_path):
    state = tmp_path / "soak.json"
    run_soak(base_seed=5, time_budget=60.0, state_path=state,
             iterations=10, execute=_seeded_bug_executor)
    lines = []
    fresh = run_soak(base_seed=11, time_budget=60.0, state_path=state,
                     iterations=10, execute=_seeded_bug_executor,
                     log=lines.append)
    assert (fresh.session_index, fresh.session_seed) == (0, 11)
    assert fresh.total_sessions == 1
    assert any("starting fresh" in line for line in lines)
    assert load_soak_state(state)["base_seed"] == 11


def test_soak_session_replays_bit_identically(tmp_path):
    """Resuming twice from copies of the same checkpoint produces the
    same session fingerprint (wall-clock never leaks in)."""
    seed_state = tmp_path / "soak.json"
    run_soak(base_seed=5, time_budget=60.0, state_path=seed_state,
             iterations=40, execute=_seeded_bug_executor)
    twins = []
    for name in ("a", "b"):
        twin = tmp_path / f"{name}.json"
        twin.write_text(seed_state.read_text())
        twins.append(run_soak(
            base_seed=5, time_budget=60.0, state_path=twin,
            iterations=40, execute=_seeded_bug_executor,
        ))
    assert twins[0].report.fingerprint() == twins[1].report.fingerprint()
    assert twins[0].session_seed == twins[1].session_seed


# ------------------------------------------------------- real regressions


def test_committed_corpus_replays_clean():
    """Every committed regression plan — each reproduced a durability
    violation before its fix — must replay clean against the current
    simulator."""
    plans = sorted(CORPUS.glob("*.plan"))
    assert plans, f"no corpus entries under {CORPUS}"
    for path in plans:
        scenario = scenario_from_text(path.read_text())
        outcome = execute_scenario(scenario)
        assert outcome.aborted == "", f"{path.name}: {outcome.aborted}"
        assert outcome.violations == (), (
            f"{path.name} regressed: {outcome.violations}"
        )


def test_wire_corpus_plans_exercise_wire_coverage():
    """The committed ``wire-*`` demonstration plans must keep producing
    the adversary-recovery coverage keys they were committed for — a
    plan that stops hitting its wire path has silently gone stale."""
    expectations = {
        "wire-corruption-recovered": {"wire.crc_rejected",
                                      "wire.retransmit"},
        "wire-dup-suppression": {"wire.dup_suppressed", "wire.gap"},
    }
    plans = sorted(CORPUS.glob("wire-*.plan"))
    assert len(plans) >= 2, "wire demonstration plans missing"
    for path in plans:
        prefix = path.name.rsplit("-", 1)[0]
        expected = expectations[prefix]
        outcome = execute_scenario(scenario_from_text(path.read_text()))
        assert outcome.ok, f"{path.name}: {outcome.violations}"
        missing = expected - outcome.coverage
        assert not missing, f"{path.name} lost coverage: {sorted(missing)}"


def test_corruption_corpus_plan_caught_by_oracle_without_crc():
    """Defense proof at the fuzz level: replaying the corruption plan
    with frame verification disabled delivers the swapped payloads, and
    the durability oracle — not the messenger — reports them."""
    from repro.msgr import AsyncMessenger

    path = next(iter(sorted(CORPUS.glob("wire-corruption-recovered-*"))))
    scenario = scenario_from_text(path.read_text())
    try:
        AsyncMessenger.verify_frames = False
        outcome = execute_scenario(scenario)
    finally:
        AsyncMessenger.verify_frames = True
    assert outcome.aborted == ""
    assert outcome.violations
    assert violation_signature(outcome.violations) == "identity"
    assert "wire.crc_rejected" not in outcome.coverage
