"""Direct unit tests for the host proxy server and ProxyObjectStore
(outside the full cluster): op classification, handler behaviour,
write-buffer accounting, and error propagation."""

import pytest

from repro.cluster import DocephProfile
from repro.core import HostProxyServer, ProxyObjectStore
from repro.hw import ClusterNode, CpuComplex, DmaEngine, Network, SimThread, SsdDevice
from repro.objectstore import (
    BlueStore,
    BlueStoreConfig,
    NoSuchObject,
    StoreError,
    Transaction,
)
from repro.sim import Environment
from repro.util import DataBlob

MB = 1 << 20


def make_proxy_rig(env, profile=None):
    """One DPU node with BlueStore + HostProxyServer + ProxyObjectStore."""
    profile = profile or DocephProfile()
    network = Network(env)
    host_cpu = CpuComplex(env, "n.host", cores=8)
    dpu_cpu = CpuComplex(env, "n.dpu", cores=8, perf=0.45)
    ssd = SsdDevice(env, "n.ssd")
    dma = DmaEngine(
        env, "n.dma", bandwidth=profile.dma_bandwidth,
        setup_latency=profile.dma_setup_latency,
        max_transfer=profile.dma_max_transfer,
    )
    node = ClusterNode(env, network, "n", host_cpu, ssd,
                       nic_bandwidth=100e9, tcp=profile.tcp,
                       dpu_cpu=dpu_cpu, dma=dma)
    store = BlueStore(env, "bs", host_cpu, ssd,
                      BlueStoreConfig(device_capacity=1 << 30))
    store.mkfs()
    store.create_collection_sync("pg")
    server = HostProxyServer(node, store, profile)
    proxy = ProxyObjectStore(node, server, profile)
    thread = SimThread(dpu_cpu, "osd-thread", "tp_osd_tp")
    return node, store, server, proxy, thread


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


# ------------------------------------------------------------ classification


def test_data_txn_uses_dma_metadata_txn_uses_rpc():
    env = Environment()
    node, store, server, proxy, thread = make_proxy_rig(env)

    def work():
        blob = DataBlob(4 * MB)
        yield from proxy.queue_transaction(
            Transaction().write("pg", "big", 0, blob.length, blob), thread
        )
        yield from proxy.queue_transaction(
            Transaction().touch("pg", "meta-only"), thread
        )

    run(env, work())
    assert proxy.data_ops == 1
    assert proxy.control_ops >= 1
    assert node.dma.bytes_transferred == 4 * MB  # only the data op
    assert store.txns_committed == 2


def test_write_buffer_accounting_returns_to_full():
    env = Environment()
    node, store, server, proxy, thread = make_proxy_rig(env)
    cap = server.write_buffers.capacity

    def work():
        blob = DataBlob(8 * MB)
        yield from proxy.queue_transaction(
            Transaction().write("pg", "x", 0, blob.length, blob), thread
        )

    run(env, work())
    assert server.write_buffers.level == cap  # fully released post-commit


def test_oversized_write_rejected_without_leaking_buffers():
    env = Environment()
    profile = DocephProfile(host_write_buffer_bytes=4 * MB)
    node, store, server, proxy, thread = make_proxy_rig(env, profile)

    def work():
        blob = DataBlob(8 * MB)
        try:
            yield from proxy.queue_transaction(
                Transaction().write("pg", "x", 0, blob.length, blob), thread
            )
        except StoreError as exc:
            return str(exc)

    out = run(env, work())
    assert "exceeds the host write-buffer pool" in out
    assert server.write_buffers.level == 4 * MB


def test_control_ops_roundtrip_through_rpc():
    env = Environment()
    node, store, server, proxy, thread = make_proxy_rig(env)

    def work():
        blob = DataBlob(1 * MB)
        txn = (Transaction()
               .write("pg", "obj", 0, blob.length, blob)
               .setattr("pg", "obj", "_", b"oi"))
        yield from proxy.queue_transaction(txn, thread)
        st = yield from proxy.stat("pg", "obj", thread)
        exists = yield from proxy.exists("pg", "obj", thread)
        ghost = yield from proxy.exists("pg", "ghost", thread)
        attr = yield from proxy.getattr("pg", "obj", "_", thread)
        names = yield from proxy.list_objects("pg", thread)
        return st, exists, ghost, attr, names

    st, exists, ghost, attr, names = run(env, work())
    assert st.size == 1 * MB
    assert exists is True
    assert ghost is False
    assert attr == b"oi"
    assert names == ["obj"]
    assert server.control_ops >= 5


def test_stat_missing_raises_nosuchobject():
    env = Environment()
    node, store, server, proxy, thread = make_proxy_rig(env)

    def work():
        try:
            yield from proxy.stat("pg", "ghost", thread)
        except NoSuchObject:
            return "missing"

    assert run(env, work()) == "missing"


def test_getattr_missing_attr_raises():
    env = Environment()
    node, store, server, proxy, thread = make_proxy_rig(env)

    def work():
        yield from proxy.queue_transaction(
            Transaction().touch("pg", "obj"), thread
        )
        try:
            yield from proxy.getattr("pg", "obj", "nope", thread)
        except NoSuchObject:
            return "noattr"

    assert run(env, work()) == "noattr"


def test_read_streams_back_over_dma():
    env = Environment()
    node, store, server, proxy, thread = make_proxy_rig(env)

    def work():
        blob = DataBlob(3 * MB)
        yield from proxy.queue_transaction(
            Transaction().write("pg", "obj", 0, blob.length, blob), thread
        )
        before = node.dma.bytes_transferred
        out = yield from proxy.read("pg", "obj", 0, 3 * MB, thread)
        return out, node.dma.bytes_transferred - before

    out, dma_delta = run(env, work())
    assert out.length == 3 * MB
    assert dma_delta == 3 * MB


def test_read_missing_raises():
    env = Environment()
    node, store, server, proxy, thread = make_proxy_rig(env)

    def work():
        try:
            yield from proxy.read("pg", "ghost", 0, MB, thread)
        except NoSuchObject:
            return "missing"

    assert run(env, work()) == "missing"


def test_txn_error_propagates_as_storeerror():
    env = Environment()
    node, store, server, proxy, thread = make_proxy_rig(env)

    def work():
        blob = DataBlob(MB)
        txn = Transaction().write("no-such-coll", "x", 0, blob.length, blob)
        try:
            yield from proxy.queue_transaction(txn, thread)
        except StoreError as exc:
            return str(exc)

    out = run(env, work())
    assert "no such collection" in out
    # buffers still returned despite the failure
    assert server.write_buffers.level == server.write_buffers.capacity


def test_breakdown_recorded_per_data_op():
    env = Environment()
    node, store, server, proxy, thread = make_proxy_rig(env)

    def work():
        for i in range(3):
            blob = DataBlob(2 * MB)
            yield from proxy.queue_transaction(
                Transaction().write("pg", f"o{i}", 0, blob.length, blob),
                thread,
            )

    run(env, work())
    assert len(proxy.breakdowns) == 3
    for bd in proxy.breakdowns:
        assert bd.size == 2 * MB
        assert bd.total > 0
        assert bd.others >= 0
    proxy.reset_breakdowns()
    assert proxy.breakdowns == []


def test_proxy_requires_dpu_node():
    env = Environment()
    network = Network(env)
    from repro.hw import TcpStackModel

    plain = ClusterNode(env, network, "plain",
                        CpuComplex(env, "h", cores=2),
                        SsdDevice(env, "s"),
                        nic_bandwidth=1e9, tcp=TcpStackModel())
    with pytest.raises(ValueError):
        ProxyObjectStore(plain, None, DocephProfile())
