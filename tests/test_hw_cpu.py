"""Tests for the CPU complex and thread accounting model."""

import pytest

from repro.hw import CpuComplex, SimThread
from repro.sim import Environment, SimulationError


def make_cpu(cores=2, perf=1.0, ctx_cost=0.0):
    env = Environment()
    return env, CpuComplex(env, "test", cores=cores, perf=perf,
                           ctx_switch_cost=ctx_cost)


def test_execute_accounts_busy_time():
    env, cpu = make_cpu()
    t = SimThread(cpu, "worker-0", "msgr-worker")

    def proc():
        yield from t.charge(0.5)

    env.process(proc())
    env.run()
    assert cpu.accounting.busy_by_category["msgr-worker"] == pytest.approx(0.5)
    assert cpu.accounting.busy_by_thread["worker-0"] == pytest.approx(0.5)
    assert env.now == pytest.approx(0.5)


def test_perf_factor_scales_wall_time():
    env, cpu = make_cpu(perf=0.5)
    t = SimThread(cpu, "arm-0", "msgr-worker")

    def proc():
        yield from t.charge(1.0)

    env.process(proc())
    env.run()
    # 1 reference-second of work takes 2 wall seconds on a 0.5x core
    assert env.now == pytest.approx(2.0)
    assert cpu.accounting.total_busy() == pytest.approx(2.0)


def test_core_contention_queues_work():
    env, cpu = make_cpu(cores=1)
    a = SimThread(cpu, "a", "cat")
    b = SimThread(cpu, "b", "cat")
    finish = {}

    def proc(t, name):
        yield from t.charge(1.0)
        finish[name] = t.env.now

    env.process(proc(a, "a"))
    env.process(proc(b, "b"))
    env.run()
    assert finish == {"a": 1.0, "b": 2.0}


def test_parallel_cores_run_concurrently():
    env, cpu = make_cpu(cores=2)
    finish = {}

    def proc(name):
        t = SimThread(cpu, name, "cat")
        yield from t.charge(1.0)
        finish[name] = env.now

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert finish == {"a": 1.0, "b": 1.0}


def test_zero_work_is_free():
    env, cpu = make_cpu()
    t = SimThread(cpu, "x", "cat")

    def proc():
        yield from t.charge(0.0)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 0.0
    assert cpu.accounting.total_busy() == 0.0


def test_negative_work_rejected():
    env, cpu = make_cpu()
    t = SimThread(cpu, "x", "cat")

    def proc():
        yield from t.charge(-1.0)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_ctx_switch_counting_and_cost():
    env, cpu = make_cpu(ctx_cost=1e-3)
    t = SimThread(cpu, "x", "msgr-worker")

    def proc():
        yield from t.ctx_switch(5)

    env.process(proc())
    env.run()
    assert cpu.accounting.ctx_by_category["msgr-worker"] == 5
    assert cpu.accounting.total_busy() == pytest.approx(5e-3)


def test_utilization_and_busy_cores():
    env, cpu = make_cpu(cores=4)
    t = SimThread(cpu, "x", "cat")

    def proc():
        yield from t.charge(2.0)
        yield env.timeout(2.0)  # idle

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(4.0)
    assert cpu.utilization() == pytest.approx(2.0 / (4 * 4.0))
    assert cpu.utilization(budget_cores=2) == pytest.approx(2.0 / (2 * 4.0))
    assert cpu.busy_cores() == pytest.approx(0.5)


def test_utilization_zero_elapsed():
    env, cpu = make_cpu()
    assert cpu.utilization() == 0.0
    assert cpu.busy_cores() == 0.0


def test_snapshot_diff():
    env, cpu = make_cpu()
    t = SimThread(cpu, "x", "cat")

    def proc():
        yield from t.charge(1.0)
        snap1 = cpu.accounting.snapshot(env.now)
        yield from t.charge(0.5)
        snap2 = cpu.accounting.snapshot(env.now)
        delta = snap2.busy_since(snap1)
        assert delta["cat"] == pytest.approx(0.5)

    env.process(proc())
    env.run()


def test_invalid_construction():
    env = Environment()
    with pytest.raises(SimulationError):
        CpuComplex(env, "bad", cores=0)
    with pytest.raises(SimulationError):
        CpuComplex(env, "bad", cores=1, perf=0)


def test_multi_category_accounting():
    env, cpu = make_cpu(cores=4)
    msgr = SimThread(cpu, "msgr-worker-0", "msgr-worker")
    bstore = SimThread(cpu, "bstore_kv", "bstore")

    def proc(t, amount):
        yield from t.charge(amount)

    env.process(proc(msgr, 0.8))
    env.process(proc(bstore, 0.2))
    env.run()
    acct = cpu.accounting
    assert acct.busy_by_category["msgr-worker"] == pytest.approx(0.8)
    assert acct.busy_by_category["bstore"] == pytest.approx(0.2)
    assert acct.total_busy() == pytest.approx(1.0)
