"""Tests for network, TCP cost model, DMA engine, and SSD models."""

import pytest

from repro.hw import (
    DmaEngine,
    DmaError,
    MAX_DMA_TRANSFER,
    Network,
    Nic,
    SsdDevice,
    TcpStackModel,
)
from repro.sim import Environment, SimulationError


# ---------------------------------------------------------------- network


def test_delivery_time_uncontended():
    env = Environment()
    net = Network(env, latency_s=1e-3)
    for name in ("a", "b"):
        net.attach(name, Nic(env, name, bandwidth_bps=8e6))  # 1 MB/s

    def proc():
        yield from net.deliver("a", "b", 1_000_000)
        return env.now

    p = env.process(proc())
    env.run()
    # Cut-through: tx serialization (1 s) overlaps rx except for the
    # final chunk (262144 B → 0.262 s) plus one propagation latency.
    expected = 1.0 + 1e-3 + 262_144 * 8 / 8e6
    assert p.value == pytest.approx(expected, rel=1e-6)


def test_loopback_is_free():
    env = Environment()
    net = Network(env, latency_s=1e-3)
    net.attach("a", Nic(env, "a", bandwidth_bps=8e6))

    def proc():
        yield from net.deliver("a", "a", 10_000_000)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 0.0


def test_saturated_throughput_equals_bandwidth():
    """Many concurrent senders share the rx pipe at exactly its rate."""
    env = Environment()
    net = Network(env, latency_s=0.0)
    net.attach("dst", Nic(env, "dst", bandwidth_bps=8e6))  # 1 MB/s
    for i in range(4):
        net.attach(f"src{i}", Nic(env, f"src{i}", bandwidth_bps=80e6))

    done = []

    def sender(i):
        yield from net.deliver(f"src{i}", "dst", 1_000_000)
        done.append(env.now)

    for i in range(4):
        env.process(sender(i))
    env.run()
    # 4 MB through a 1 MB/s rx pipe: last completion at ~4 s.
    assert done[-1] == pytest.approx(4.0, rel=0.05)


def test_chunking_prevents_head_of_line_blocking():
    """A small message slips between chunks of a big one."""
    env = Environment()
    net = Network(env, latency_s=0.0)
    net.attach("dst", Nic(env, "dst", bandwidth_bps=8e6, chunk_bytes=10_000))
    net.attach("big", Nic(env, "big", bandwidth_bps=800e6))
    net.attach("small", Nic(env, "small", bandwidth_bps=800e6))

    small_done = []

    def big_sender():
        yield from net.deliver("big", "dst", 1_000_000)  # 1 s of rx time

    def small_sender():
        yield env.timeout(0.001)
        yield from net.deliver("small", "dst", 1_000)
        small_done.append(env.now)

    env.process(big_sender())
    env.process(small_sender())
    env.run()
    # Without chunking the small message would wait the full 1 s.
    assert small_done[0] < 0.1


def test_network_duplicate_attach_and_unknown():
    env = Environment()
    net = Network(env)
    net.attach("a", Nic(env, "a", 1e9))
    with pytest.raises(SimulationError):
        net.attach("a", Nic(env, "a2", 1e9))
    with pytest.raises(SimulationError):
        net.nic("zzz")


def test_pipe_statistics():
    env = Environment()
    net = Network(env, latency_s=0)
    net.attach("a", Nic(env, "a", 8e6))
    net.attach("b", Nic(env, "b", 8e6))

    def proc():
        yield from net.deliver("a", "b", 500_000)

    env.process(proc())
    env.run()
    assert net.nic("a").tx.bytes_transferred == 500_000
    assert net.nic("b").rx.bytes_transferred == 500_000
    assert net.nic("a").tx.busy_time == pytest.approx(0.5)


# ---------------------------------------------------------------- tcp model


def test_tcp_costs_scale_with_bytes():
    tcp = TcpStackModel()
    assert tcp.send_cpu(1 << 20) > tcp.send_cpu(1 << 10)
    assert tcp.recv_cpu(1 << 20) > tcp.send_cpu(1 << 20)  # recv is pricier


def test_tcp_minimum_one_syscall():
    tcp = TcpStackModel()
    assert tcp.send_ctx(1) == tcp.ctx_per_syscall
    assert tcp.recv_ctx(1) == tcp.ctx_per_wakeup + tcp.ctx_per_syscall
    assert tcp.send_cpu(0) > 0  # even empty messages pay the syscall


def test_tcp_ctx_counts_grow_with_size():
    tcp = TcpStackModel(syscall_bytes=1000)
    assert tcp.send_ctx(10_000) == 10
    assert tcp.recv_ctx(10_000) == 11


# ---------------------------------------------------------------- dma


def test_dma_transfer_time():
    env = Environment()
    dma = DmaEngine(env, "d", bandwidth=1e9, setup_latency=1e-3)

    def proc():
        waited = yield from dma.transfer(1_000_000)
        return (env.now, waited)

    p = env.process(proc())
    env.run()
    t, waited = p.value
    assert t == pytest.approx(1e-3 + 1e-3)
    assert waited == 0.0
    assert dma.bytes_transferred == 1_000_000
    assert dma.transfers == 1


def test_dma_respects_hardware_cap():
    env = Environment()
    dma = DmaEngine(env, "d")

    def proc():
        yield from dma.transfer(MAX_DMA_TRANSFER + 1)

    env.process(proc())
    with pytest.raises(SimulationError, match="segment"):
        env.run()


def test_dma_channel_queueing_reports_wait():
    env = Environment()
    dma = DmaEngine(env, "d", bandwidth=1e6, setup_latency=0, channels=1)
    waits = []

    def proc():
        waited = yield from dma.transfer(1_000_000)  # 1 s each
        waits.append(waited)

    env.process(proc())
    env.process(proc())
    env.run()
    assert waits[0] == pytest.approx(0.0)
    assert waits[1] == pytest.approx(1.0)
    assert dma.wait_time == pytest.approx(1.0)


def test_dma_fault_injection():
    env = Environment()
    dma = DmaEngine(env, "d")
    dma.fault_hook = lambda n: True

    def proc():
        try:
            yield from dma.transfer(4096)
        except DmaError:
            return "failed"

    p = env.process(proc())
    env.run()
    assert p.value == "failed"
    assert dma.failures == 1
    assert dma.transfers == 0
    assert dma.bytes_transferred == 0


def test_dma_invalid_sizes():
    env = Environment()
    dma = DmaEngine(env, "d")

    def proc():
        yield from dma.transfer(0)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_dma_multi_channel_parallelism():
    env = Environment()
    dma = DmaEngine(env, "d", bandwidth=1e6, setup_latency=0, channels=2)
    done = []

    def proc():
        yield from dma.transfer(1_000_000)
        done.append(env.now)

    env.process(proc())
    env.process(proc())
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(1.0)]


# ---------------------------------------------------------------- ssd


def test_ssd_write_time_and_stats():
    env = Environment()
    ssd = SsdDevice(env, "s", write_bandwidth=1e9, write_latency=1e-4)

    def proc():
        yield from ssd.write(1_000_000)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == pytest.approx(1e-4 + 1e-3)
    assert ssd.bytes_written == 1_000_000
    assert ssd.writes == 1


def test_ssd_reads_and_writes_share_channel():
    env = Environment()
    ssd = SsdDevice(env, "s", write_bandwidth=1e6, read_bandwidth=1e6,
                    write_latency=0, read_latency=0)
    order = []

    def writer():
        yield from ssd.write(1_000_000)
        order.append(("w", env.now))

    def reader():
        yield from ssd.read(1_000_000)
        order.append(("r", env.now))

    env.process(writer())
    env.process(reader())
    env.run()
    assert order == [("w", pytest.approx(1.0)), ("r", pytest.approx(2.0))]


def test_ssd_utilization():
    env = Environment()
    ssd = SsdDevice(env, "s", write_bandwidth=1e6, write_latency=0)

    def proc():
        yield from ssd.write(500_000)
        yield env.timeout(0.5)  # idle

    env.process(proc())
    env.run()
    assert ssd.utilization(env.now) == pytest.approx(0.5)


def test_ssd_saturation_throughput():
    """Aggregate write throughput cannot exceed device bandwidth."""
    env = Environment()
    ssd = SsdDevice(env, "s", write_bandwidth=1e6, write_latency=0)

    def writer():
        for _ in range(5):
            yield from ssd.write(100_000)

    for _ in range(4):
        env.process(writer())
    env.run()
    total = 4 * 5 * 100_000
    assert env.now == pytest.approx(total / 1e6)
