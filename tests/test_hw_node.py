"""Tests for node composition (ClusterNode, NetStack)."""

import pytest

from repro.hw import (
    ClusterNode,
    CpuComplex,
    DmaEngine,
    Network,
    SsdDevice,
    TcpStackModel,
)
from repro.sim import Environment


def make_node(env, with_dpu=False):
    network = Network(env)
    host_cpu = CpuComplex(env, "n.host", cores=8)
    ssd = SsdDevice(env, "n.ssd")
    kwargs = {}
    if with_dpu:
        kwargs["dpu_cpu"] = CpuComplex(env, "n.dpu", cores=16, perf=0.45)
        kwargs["dma"] = DmaEngine(env, "n.dma")
    return ClusterNode(env, network, "n", host_cpu, ssd,
                       nic_bandwidth=100e9, tcp=TcpStackModel(), **kwargs)


def test_baseline_node_has_no_dpu():
    env = Environment()
    node = make_node(env)
    assert not node.has_dpu
    assert node.dma is None
    with pytest.raises(ValueError):
        node.dpu_stack()


def test_dpu_node_stacks_differ_only_in_cpu():
    env = Environment()
    node = make_node(env, with_dpu=True)
    assert node.has_dpu
    host = node.host_stack()
    dpu = node.dpu_stack()
    # same NIC, same address, same TCP model — only the CPU changes
    assert host.nic is dpu.nic
    assert host.address == dpu.address
    assert host.tcp is dpu.tcp
    assert host.cpu is not dpu.cpu
    assert dpu.cpu.perf == pytest.approx(0.45)


def test_node_attaches_nic_to_network():
    env = Environment()
    network = Network(env)
    host_cpu = CpuComplex(env, "x.host", cores=2)
    node = ClusterNode(env, network, "x", host_cpu,
                       SsdDevice(env, "x.ssd"),
                       nic_bandwidth=10e9, tcp=TcpStackModel())
    assert network.nic("x") is node.nic


def test_netstack_env_property():
    env = Environment()
    node = make_node(env)
    assert node.host_stack().env is env


def test_repr_shows_mode():
    env = Environment()
    assert "NIC" in repr(make_node(env))
    assert "DPU" in repr(make_node(env, with_dpu=True))
