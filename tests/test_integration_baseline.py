"""End-to-end integration tests for the Baseline cluster.

Exercises the full path: client → messenger → OSD dispatch →
replication → BlueStore commit → ack, plus monitor boot, heartbeats,
reads, stats and deletes.
"""

import pytest

from repro.cluster import BENCH_POOL, build_baseline_cluster, HardwareProfile
from repro.rados import RadosError
from repro.sim import Environment


@pytest.fixture
def cluster():
    env = Environment()
    c = build_baseline_cluster(env)
    boot = env.process(c.boot(), name="boot")
    env.run(until=boot)
    return c


def run_client(cluster, gen_fn):
    """Run a client generator to completion, return its value."""
    env = cluster.env
    p = env.process(gen_fn(), name="testclient")
    env.run(until=p)
    return p.value


def test_boot_populates_map_and_pgs(cluster):
    assert cluster.client.osdmap is not None
    assert cluster.client.osdmap.epoch >= 1
    for osd in cluster.osds:
        assert len(osd.pgs) > 0
    # every PG collection exists on every acting OSD's store
    total_pgs = sum(len(o.pgs) for o in cluster.osds)
    assert total_pgs == 2 * cluster.profile.pg_num  # replication 2


def test_write_replicates_to_both_nodes(cluster):
    client = cluster.client

    def work():
        result = yield from client.write_object(BENCH_POOL, "obj-A", 1 << 20)
        return result

    result = run_client(cluster, work)
    assert result.result == 0
    assert result.latency > 0
    # the object is durable on BOTH stores (replication factor 2)
    found = 0
    for store in cluster.stores:
        for coll, objects in store.collections.items():
            if "obj-A" in objects:
                found += 1
                assert objects["obj-A"].size == 1 << 20
    assert found == 2


def test_write_then_read_roundtrip(cluster):
    client = cluster.client

    def work():
        yield from client.write_object(BENCH_POOL, "obj-B", 4 << 20)
        read = yield from client.read_object(BENCH_POOL, "obj-B", 4 << 20)
        return read

    read = run_client(cluster, work)
    assert read.result == 0
    assert read.data is not None
    assert read.data.length == 4 << 20


def test_stat_reports_size_and_missing(cluster):
    client = cluster.client

    def work():
        yield from client.write_object(BENCH_POOL, "obj-C", 2 << 20)
        st = yield from client.stat_object(BENCH_POOL, "obj-C")
        missing = yield from client.stat_object(BENCH_POOL, "ghost")
        return st, missing

    st, missing = run_client(cluster, work)
    assert st.result == 0
    assert st.attachment.size == 2 << 20
    assert missing.result == -2


def test_delete_removes_from_all_replicas(cluster):
    client = cluster.client

    def work():
        yield from client.write_object(BENCH_POOL, "obj-D", 1 << 20)
        yield from client.delete_object(BENCH_POOL, "obj-D")
        st = yield from client.stat_object(BENCH_POOL, "obj-D")
        return st

    st = run_client(cluster, work)
    assert st.result == -2
    for store in cluster.stores:
        for objects in store.collections.values():
            assert "obj-D" not in objects


def test_client_requires_boot():
    env = Environment()
    c = build_baseline_cluster(env)

    def work():
        yield from c.client.write_object(BENCH_POOL, "x", 1024)

    p = env.process(work())
    with pytest.raises(RadosError):
        env.run(until=p)


def test_concurrent_clients_complete(cluster):
    env = cluster.env
    client = cluster.client
    done = []

    def worker(i):
        for j in range(3):
            yield from client.write_object(BENCH_POOL, f"c{i}-o{j}", 1 << 20)
        done.append(i)

    procs = [env.process(worker(i)) for i in range(8)]
    for p in procs:
        env.run(until=p)
    assert sorted(done) == list(range(8))
    total_ops = sum(o.client_ops for o in cluster.osds)
    assert total_ops == 24


def test_heartbeats_flow_between_osds(cluster):
    env = cluster.env
    env.run(until=env.now + 5.0)
    for osd in cluster.osds:
        assert osd.heartbeat is not None
        assert osd.heartbeat.healthy_peers(env.now)
        assert not osd.heartbeat.stale_peers(env.now)


def test_mon_tracks_beacons(cluster):
    env = cluster.env
    env.run(until=env.now + 5.0)
    for osd in cluster.osds:
        assert osd.osd_id in cluster.mon.last_beacon


def test_cpu_accrues_in_expected_categories(cluster):
    env = cluster.env
    client = cluster.client

    def work():
        yield from client.write_object(BENCH_POOL, "obj-E", 8 << 20)

    run_client(cluster, work)
    for cpu in cluster.ceph_cpus():
        busy = cpu.accounting.busy_by_category
        assert busy.get("msgr-worker", 0) > 0
        assert busy.get("tp_osd_tp", 0) > 0
        assert busy.get("bstore", 0) > 0


def test_replication_size_one_profile():
    env = Environment()
    profile = HardwareProfile(replication=1)
    c = build_baseline_cluster(env, profile)
    boot = env.process(c.boot())
    env.run(until=boot)

    def work():
        result = yield from c.client.write_object(BENCH_POOL, "solo", 1 << 20)
        return result

    p = env.process(work())
    env.run(until=p)
    assert p.value.result == 0
    found = sum(
        1
        for store in c.stores
        for objects in store.collections.values()
        if "solo" in objects
    )
    assert found == 1  # single copy


def test_deterministic_across_runs():
    """Identical seeds and workloads produce identical traces."""

    def run_once():
        env = Environment()
        c = build_baseline_cluster(env)
        boot = env.process(c.boot())
        env.run(until=boot)
        lat = []

        def work():
            for i in range(5):
                r = yield from c.client.write_object(
                    BENCH_POOL, f"det-{i}", 1 << 20
                )
                lat.append(r.latency)

        p = env.process(work())
        env.run(until=p)
        return lat

    assert run_once() == run_once()


def test_aio_pipelined_writes(cluster):
    """The aio API drives queue depth from one caller context."""
    env = cluster.env
    client = cluster.client

    def work():
        completions = [
            client.aio_write(BENCH_POOL, f"aio-{i}", 1 << 20)
            for i in range(8)
        ]
        results = []
        for c in completions:
            result = yield c.wait()
            results.append(result)
        return completions, results

    p = env.process(work())
    env.run(until=p)
    completions, results = p.value
    assert all(c.is_complete for c in completions)
    assert all(r.result == 0 for r in results)
    # queue depth 8 from a single caller: total wall time well below
    # 8x a single op's latency
    total = max(r.latency for r in results)
    serial = sum(r.latency for r in results)
    assert total < 0.5 * serial


def test_aio_read_roundtrip(cluster):
    env = cluster.env
    client = cluster.client

    def work():
        w = client.aio_write(BENCH_POOL, "aio-obj", 1 << 20)
        yield w.wait()
        r = client.aio_read(BENCH_POOL, "aio-obj", 1 << 20)
        result = yield r.wait()
        return result

    p = env.process(work())
    env.run(until=p)
    assert p.value.data.length == 1 << 20


def test_aio_completion_failure_propagates():
    """An unbooted client's aio op fails through the completion's wait."""
    env = Environment()
    c = build_baseline_cluster(env)  # no boot: osdmap missing

    def work():
        completion = c.client.aio_write(BENCH_POOL, "x", 1024)
        try:
            yield completion.wait()
        except RadosError as exc:
            return (completion.error is exc, completion.is_complete)

    p = env.process(work())
    env.run(until=p)
    assert p.value == (True, True)
