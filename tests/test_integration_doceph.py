"""End-to-end integration tests for the DoCeph cluster.

The same client workload as the baseline integration tests, but routed
through the DPU: OSD + messenger on ARM cores, ProxyObjectStore →
RPC/DMA → host BlueStore.
"""

import pytest

from repro.cluster import (
    BENCH_POOL,
    DocephProfile,
    build_doceph_cluster,
)
from repro.core import ProxyObjectStore
from repro.sim import Environment


@pytest.fixture
def cluster():
    env = Environment()
    c = build_doceph_cluster(env)
    boot = env.process(c.boot(), name="boot")
    env.run(until=boot)
    return c


def run_client(cluster, gen_fn):
    env = cluster.env
    p = env.process(gen_fn(), name="testclient")
    env.run(until=p)
    return p.value


def test_nodes_have_dpus_and_proxies(cluster):
    for node in cluster.nodes:
        assert node.has_dpu
        assert node.dma is not None
    for osd in cluster.osds:
        assert isinstance(osd.store, ProxyObjectStore)
        # the messenger lives on the DPU stack
        assert osd.messenger.stack.cpu is not osd.store.node.host_cpu
        assert osd.messenger.stack.cpu is osd.store.node.dpu_cpu


def test_write_goes_through_dma_and_commits_on_host(cluster):
    client = cluster.client

    def work():
        result = yield from client.write_object(BENCH_POOL, "obj-A", 4 << 20)
        return result

    result = run_client(cluster, work)
    assert result.result == 0
    # bulk bytes crossed the DMA engines (2 nodes × 4 MB, segmented)
    dma_bytes = sum(n.dma.bytes_transferred for n in cluster.nodes)
    assert dma_bytes == 2 * (4 << 20)
    # BlueStore on the host holds the object on both nodes
    found = sum(
        1
        for store in cluster.stores
        for objects in store.collections.values()
        if "obj-A" in objects
    )
    assert found == 2
    # transactions were executed by the host proxy servers
    assert all(s.txns_executed >= 1 for s in cluster.proxy_servers)


def test_write_records_breakdown(cluster):
    client = cluster.client

    def work():
        yield from client.write_object(BENCH_POOL, "obj-B", 8 << 20)

    run_client(cluster, work)
    breakdowns = []
    for osd in cluster.osds:
        breakdowns.extend(osd.store.breakdowns)
    assert len(breakdowns) == 2  # primary + replica
    for bd in breakdowns:
        assert bd.size == 8 << 20
        assert bd.host_write > 0
        assert bd.dma > 0
        assert bd.total >= bd.host_write + bd.dma + bd.dma_wait
        assert bd.others >= 0


def test_small_metadata_txn_uses_control_plane(cluster):
    """A data-less transaction (PG collection create at boot) travels
    over RPC, not DMA."""
    proxy = cluster.osds[0].store
    assert proxy.control_ops > 0  # boot-time create_collection batches


def test_read_roundtrip_via_reverse_dma(cluster):
    client = cluster.client

    def work():
        yield from client.write_object(BENCH_POOL, "obj-C", 4 << 20)
        dma_before = sum(n.dma.bytes_transferred for n in cluster.nodes)
        read = yield from client.read_object(BENCH_POOL, "obj-C", 4 << 20)
        dma_after = sum(n.dma.bytes_transferred for n in cluster.nodes)
        return read, dma_after - dma_before

    read, dma_delta = run_client(cluster, work)
    assert read.result == 0
    assert read.data.length == 4 << 20
    assert dma_delta == 4 << 20  # data came back over the DMA bridge


def test_stat_missing_yields_enoent(cluster):
    client = cluster.client

    def work():
        st = yield from client.stat_object(BENCH_POOL, "ghost")
        return st

    st = run_client(cluster, work)
    assert st.result == -2


def test_delete_via_proxy(cluster):
    client = cluster.client

    def work():
        yield from client.write_object(BENCH_POOL, "obj-D", 1 << 20)
        yield from client.delete_object(BENCH_POOL, "obj-D")
        st = yield from client.stat_object(BENCH_POOL, "obj-D")
        return st

    st = run_client(cluster, work)
    assert st.result == -2
    for store in cluster.stores:
        for objects in store.collections.values():
            assert "obj-D" not in objects


def test_host_cpu_untouched_by_messenger(cluster):
    client = cluster.client

    def work():
        for i in range(4):
            yield from client.write_object(BENCH_POOL, f"obj-{i}", 4 << 20)

    run_client(cluster, work)
    for node in cluster.nodes:
        host_busy = node.host_cpu.accounting.busy_by_category
        dpu_busy = node.dpu_cpu.accounting.busy_by_category
        # no messenger or OSD CPU on the host — the offload is total
        assert "msgr-worker" not in host_busy
        assert "tp_osd_tp" not in host_busy
        # the host runs only BlueStore and the thin proxy
        assert set(host_busy) <= {"bstore", "proxy"}
        # the DPU carries the messenger and OSD work
        assert dpu_busy.get("msgr-worker", 0) > 0
        assert dpu_busy.get("tp_osd_tp", 0) > 0


def test_segmentation_respects_2mb_cap(cluster):
    client = cluster.client

    def work():
        yield from client.write_object(BENCH_POOL, "big", 16 << 20)

    run_client(cluster, work)
    for node in cluster.nodes:
        # 16 MB in 2 MB segments = 8 transfers on each node
        assert node.dma.transfers >= 8
        assert node.dma.max_transfer == 2 << 20


def test_fault_injection_profile_falls_back():
    env = Environment()
    profile = DocephProfile(dma_fault_rate=1.0, cooldown_seconds=0.2)
    c = build_doceph_cluster(env, profile)
    boot = env.process(c.boot())
    env.run(until=boot)

    def work():
        result = yield from c.client.write_object(BENCH_POOL, "x", 4 << 20)
        return result

    p = env.process(work())
    env.run(until=p)
    # Write still succeeds — via the RPC fallback path.
    assert p.value.result == 0
    stores = [o.store for o in c.osds]
    assert sum(s.fallback.failures for s in stores) >= 1
    assert sum(s.fallback.fallback_segments for s in stores) >= 1


def test_deterministic_across_runs():
    def run_once():
        env = Environment()
        c = build_doceph_cluster(env)
        boot = env.process(c.boot())
        env.run(until=boot)
        lat = []

        def work():
            for i in range(5):
                r = yield from c.client.write_object(
                    BENCH_POOL, f"det-{i}", 2 << 20
                )
                lat.append(r.latency)

        p = env.process(work())
        env.run(until=p)
        return lat

    assert run_once() == run_once()


def test_write_exceeding_buffer_pool_rejected():
    env = Environment()
    profile = DocephProfile(host_write_buffer_bytes=8 << 20)
    c = build_doceph_cluster(env, profile)
    boot = env.process(c.boot())
    env.run(until=boot)

    from repro.rados import RadosError

    def work():
        try:
            yield from c.client.write_object(BENCH_POOL, "huge", 16 << 20)
        except RadosError as exc:
            return exc.result
        return 0

    p = env.process(work())
    env.run(until=p)
    # surfaces as an error reply (-EINVAL), not a hang
    assert p.value == -22
