"""Tests for repro.lint: rule fixtures, suppressions, baseline, dynamic.

Every rule code gets a good/bad snippet pair; the engine-level features
(suppression comments, baseline round-trip, path-role exemptions) and
the dynamic tie-order probe get targeted tests of their own.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.lint import (
    RULES,
    check_tie_order,
    filter_new,
    lint_paths,
    lint_source,
    load_baseline,
    patched_tie_order,
    save_baseline,
)
from repro.sim import Environment
from repro.trace import simulation_digest


def codes(findings):
    return sorted({f.code for f in findings})


# ------------------------------------------------------------------ DET101


def test_det101_flags_wall_clock_calls():
    src = "import time\n\ndef f():\n    return time.time()\n"
    assert codes(lint_source(src, "repro/util/stats.py")) == ["DET101"]


def test_det101_flags_from_import_of_clock_primitive():
    src = "from time import perf_counter\n"
    assert codes(lint_source(src, "repro/util/stats.py")) == ["DET101"]


def test_det101_resolves_aliases():
    src = "import time as t\n\ndef f():\n    return t.monotonic()\n"
    assert codes(lint_source(src, "repro/util/stats.py")) == ["DET101"]


def test_det101_clean_and_wallclock_module_exempt():
    good = "from repro.util.wallclock import perf_counter\n\nx = perf_counter()\n"
    assert lint_source(good, "repro/util/stats.py") == []
    clock = "import time\n\ndef f():\n    return time.perf_counter()\n"
    assert lint_source(clock, "repro/util/wallclock.py") == []


def test_det101_flags_datetime_now():
    src = "import datetime\n\nstamp = datetime.datetime.now()\n"
    assert codes(lint_source(src, "repro/util/stats.py")) == ["DET101"]


# ------------------------------------------------------------------ DET102


def test_det102_flags_entropy_sources():
    src = "import uuid\nimport os\n\na = uuid.uuid4()\nb = os.urandom(8)\n"
    found = lint_source(src, "repro/util/stats.py", select=["DET102"])
    assert [f.code for f in found] == ["DET102", "DET102"]


def test_det102_clean_on_derived_ids():
    src = "import uuid\n\nn = uuid.UUID(int=7)\n"
    assert lint_source(src, "repro/util/stats.py", select=["DET102"]) == []


# ------------------------------------------------------------------ DET103


def test_det103_flags_global_random_and_unseeded_rng():
    src = "import random\n\nx = random.random()\ny = random.Random()\n"
    found = lint_source(src, "repro/util/stats.py", select=["DET103"])
    assert [f.code for f in found] == ["DET103", "DET103"]


def test_det103_allows_seeded_rng_and_rng_module():
    good = "import random\n\nr = random.Random(42)\n"
    assert lint_source(good, "repro/util/stats.py", select=["DET103"]) == []
    bad = "import random\n\nx = random.random()\n"
    assert lint_source(bad, "repro/util/rng.py", select=["DET103"]) == []


# ------------------------------------------------------------------ DET104


def test_det104_flags_set_iteration_in_for_loop():
    src = (
        "def f(items):\n"
        "    s = set(items)\n"
        "    out = []\n"
        "    for x in s:\n"
        "        out.append(x)\n"
        "    return out\n"
    )
    assert codes(lint_source(src, "repro/util/stats.py")) == ["DET104"]


def test_det104_flags_comprehension_and_union():
    src = (
        "def f(a, b):\n"
        "    return [x for x in set(a) | set(b)]\n"
    )
    assert codes(lint_source(src, "repro/util/stats.py")) == ["DET104"]


def test_det104_sorted_wrapper_is_clean():
    src = (
        "def f(items):\n"
        "    s = set(items)\n"
        "    return [x for x in sorted(s)]\n"
    )
    assert lint_source(src, "repro/util/stats.py") == []


def test_det104_join_over_set():
    src = "def f(a):\n    return ','.join(set(a))\n"
    assert codes(lint_source(src, "repro/util/stats.py")) == ["DET104"]


def test_det104_ignores_reassigned_names():
    # A name rebound to a list after being a set is not single-assignment
    # setish, so it is (conservatively) not flagged.
    src = (
        "def f(items):\n"
        "    s = set(items)\n"
        "    s = sorted(s)\n"
        "    return [x for x in s]\n"
    )
    assert lint_source(src, "repro/util/stats.py") == []


# ------------------------------------------------------------------ DET105


def test_det105_flags_id_and_hash_keys():
    src = (
        "def f(xs):\n"
        "    xs.sort(key=id)\n"
        "    return sorted(xs, key=lambda o: hash(o))\n"
    )
    found = lint_source(src, "repro/util/stats.py", select=["DET105"])
    assert [f.code for f in found] == ["DET105", "DET105"]


def test_det105_stable_key_is_clean():
    src = "def f(xs):\n    return sorted(xs, key=lambda o: o.name)\n"
    assert lint_source(src, "repro/util/stats.py", select=["DET105"]) == []


# ------------------------------------------------------------------ DET106


def test_det106_flags_env_reads_outside_boundary():
    src = "import os\n\na = os.getenv('X')\nb = os.environ['Y']\n"
    found = lint_source(src, "repro/util/stats.py", select=["DET106"])
    assert [f.code for f in found] == ["DET106", "DET106"]


def test_det106_cli_and_config_are_exempt():
    src = "import os\n\na = os.getenv('X')\n"
    assert lint_source(src, "repro/cli.py", select=["DET106"]) == []
    assert lint_source(src, "repro/cluster/config.py", select=["DET106"]) == []


# ------------------------------------------------------------------ DET107


def test_det107_flags_adversary_owning_rng():
    src = (
        "import random\n"
        "from repro.util.rng import SeededRng\n"
        "def f():\n"
        "    r = SeededRng(1)\n"
        "    return random.random()\n"
    )
    found = lint_source(src, "repro/msgr/adversary.py", select=["DET107"])
    assert [f.code for f in found] == ["DET107"] * 4


def test_det107_other_modules_are_exempt():
    src = "from repro.util.rng import SeededRng\n\nr = SeededRng(1)\n"
    assert lint_source(src, "repro/faults.py", select=["DET107"]) == []


def test_det107_real_adversary_module_is_clean():
    import pathlib

    path = pathlib.Path("src/repro/msgr/adversary.py")
    found = lint_source(path.read_text(), "repro/msgr/adversary.py",
                        select=["DET107"])
    assert found == []


# ------------------------------------------------------------------ SIM201


def test_sim201_flags_blocking_calls_and_imports_in_sim_layers():
    src = "import time\nimport socket\n\ndef f():\n    time.sleep(1)\n"
    found = lint_source(src, "repro/osd/daemon.py", select=["SIM201"])
    # the socket import and the sleep call
    assert [f.code for f in found] == ["SIM201", "SIM201"]


def test_sim201_outside_sim_layers_is_not_checked():
    src = "import time\n\ndef f():\n    time.sleep(1)\n"
    assert lint_source(src, "repro/bench/tool.py", select=["SIM201"]) == []


# ------------------------------------------------------------------ SIM202


_LEAK = (
    "def work(pool, env):\n"
    "    req = pool.request()\n"
    "    yield req\n"
    "    yield env.timeout(1)\n"
)

_BARE_RELEASE = (
    "def work(pool, env):\n"
    "    req = pool.request()\n"
    "    yield req\n"
    "    yield env.timeout(1)\n"
    "    pool.finish(req)\n"
)

_SAFE = (
    "def work(pool, env):\n"
    "    req = pool.request()\n"
    "    try:\n"
    "        yield req\n"
    "        yield env.timeout(1)\n"
    "    finally:\n"
    "        pool.finish(req)\n"
)


def test_sim202_flags_never_released_request():
    found = lint_source(_LEAK, "repro/hw/dev.py", select=["SIM202"])
    assert codes(found) == ["SIM202"]
    assert "never released" in found[0].message


def test_sim202_flags_release_outside_finally_in_generator():
    found = lint_source(_BARE_RELEASE, "repro/hw/dev.py", select=["SIM202"])
    assert codes(found) == ["SIM202"]
    assert "finally" in found[0].message


def test_sim202_try_finally_and_with_are_clean():
    assert lint_source(_SAFE, "repro/hw/dev.py", select=["SIM202"]) == []
    with_src = (
        "def work(pool, env):\n"
        "    with pool.request() as req:\n"
        "        yield req\n"
        "        yield env.timeout(1)\n"
    )
    assert lint_source(with_src, "repro/hw/dev.py", select=["SIM202"]) == []


def test_sim202_discarded_request_is_flagged():
    src = "def work(pool):\n    pool.request()\n"
    found = lint_source(src, "repro/hw/dev.py", select=["SIM202"])
    assert codes(found) == ["SIM202"]


# ------------------------------------------------------------------ PERF301


def test_perf301_flags_hot_module_class_without_slots():
    src = "class Thing:\n    def __init__(self):\n        self.x = 1\n"
    assert codes(lint_source(src, "repro/hw/dev.py")) == ["PERF301"]


def test_perf301_slots_and_slotted_dataclass_are_clean():
    slotted = "class Thing:\n    __slots__ = ('x',)\n"
    assert lint_source(slotted, "repro/hw/dev.py", select=["PERF301"]) == []
    dc = (
        "from dataclasses import dataclass\n\n"
        "@dataclass(slots=True)\n"
        "class Thing:\n"
        "    x: int = 0\n"
    )
    assert lint_source(dc, "repro/hw/dev.py", select=["PERF301"]) == []


def test_perf301_exemptions():
    exc = "class DevError(Exception):\n    pass\n"
    assert lint_source(exc, "repro/hw/dev.py", select=["PERF301"]) == []
    proto = (
        "from typing import Protocol\n\n"
        "class Reader(Protocol):\n"
        "    def read(self):\n"
        "        ...\n"
    )
    assert lint_source(proto, "repro/hw/dev.py", select=["PERF301"]) == []
    cold = "class Thing:\n    pass\n"
    assert lint_source(cold, "repro/bench/tool.py", select=["PERF301"]) == []


# ------------------------------------------------------------------ PERF302


def test_perf302_flags_undeclared_slot_assignment():
    src = (
        "class Thing:\n"
        "    __slots__ = ('x',)\n"
        "    def __init__(self):\n"
        "        self.x = 1\n"
        "    def poke(self):\n"
        "        self.y = 2\n"
    )
    found = lint_source(src, "repro/hw/dev.py", select=["PERF302"])
    assert codes(found) == ["PERF302"]
    assert "self.y" in found[0].message


def test_perf302_declared_slots_and_properties_are_clean():
    src = (
        "class Thing:\n"
        "    __slots__ = ('_x',)\n"
        "    def __init__(self):\n"
        "        self._x = 1\n"
        "    @property\n"
        "    def x(self):\n"
        "        return self._x\n"
        "    @x.setter\n"
        "    def x(self, v):\n"
        "        self._x = v\n"
        "    def bump(self):\n"
        "        self.x = 3\n"
        "        self._x += 1\n"
    )
    assert lint_source(src, "repro/hw/dev.py", select=["PERF302"]) == []


def test_perf302_inherited_slots_resolve_within_file():
    src = (
        "class Base:\n"
        "    __slots__ = ('a',)\n"
        "class Child(Base):\n"
        "    __slots__ = ('b',)\n"
        "    def __init__(self):\n"
        "        self.a = 1\n"
        "        self.b = 2\n"
        "    def poke(self):\n"
        "        self.c = 3\n"
    )
    found = lint_source(src, "repro/hw/dev.py", select=["PERF302"])
    assert len(found) == 1 and "self.c" in found[0].message


def test_perf302_unslotted_base_disables_the_check():
    src = (
        "class Base:\n"
        "    pass\n"
        "class Child(Base):\n"
        "    __slots__ = ('b',)\n"
        "    def poke(self):\n"
        "        self.c = 3\n"  # legal: Base gives instances a __dict__
    )
    assert lint_source(src, "repro/msgr/dev.py", select=["PERF302"]) == []


def test_perf302_cross_file_base_resolution(tmp_path):
    pkg = tmp_path / "repro" / "hw"
    pkg.mkdir(parents=True)
    (pkg / "base.py").write_text(
        "class Base:\n    __slots__ = ('a',)\n", encoding="utf-8"
    )
    (pkg / "child.py").write_text(
        "from .base import Base\n\n"
        "class Child(Base):\n"
        "    __slots__ = ('b',)\n"
        "    def poke(self):\n"
        "        self.a = 1\n"
        "        self.zap = 9\n",
        encoding="utf-8",
    )
    report = lint_paths([tmp_path], select=["PERF302"])
    assert len(report.findings) == 1
    assert "self.zap" in report.findings[0].message


# ------------------------------------------------------------------ PERF303


def test_perf303_flags_closure_and_literals_in_drain_loop():
    src = (
        "def drain(queue):\n"
        "    while queue:\n"
        "        ev = queue.pop()\n"
        "        cb = lambda e: e.fire()\n"
        "        batch = []\n"
        "        tags = {'k': ev}\n"
        "        names = [e.name for e in queue]\n"
    )
    found = lint_source(src, "repro/sim/loop.py", select=["PERF303"])
    assert codes(found) == ["PERF303"]
    assert len(found) == 4  # lambda, list, dict, listcomp


def test_perf303_flags_partial_and_nested_def():
    src = (
        "from functools import partial\n"
        "def drain(queue, fn):\n"
        "    while True:\n"
        "        if not queue:\n"
        "            break\n"
        "        queue.pop().callbacks.append(partial(fn, 1))\n"
        "        def helper():\n"
        "            return 1\n"
    )
    found = lint_source(src, "repro/sim/loop.py", select=["PERF303"])
    assert len(found) == 2


def test_perf303_flags_bound_method_mint_but_not_prebound_slot():
    src = (
        "class Pump:\n"
        "    __slots__ = ('_cb',)\n"
        "    def __init__(self):\n"
        "        self._cb = self.on_event\n"
        "    def on_event(self, ev):\n"
        "        pass\n"
        "    def drain(self, queue):\n"
        "        while queue:\n"
        "            ev = queue.pop()\n"
        "            ev.callbacks.append(self.on_event)\n"  # minted per event
        "            ev.callbacks.append(self._cb)\n"  # prebound: clean
        "            ev.others.append(ev.item)\n"  # data attribute: clean
    )
    found = lint_source(src, "repro/sim/pump.py", select=["PERF303"])
    assert len(found) == 1
    assert "bound method" in found[0].message


def test_perf303_yielding_loops_and_cold_files_are_clean():
    hot_but_waiting = (
        "def pump(env, queue):\n"
        "    while queue:\n"
        "        grant = [queue.pop()]\n"  # allocates, but loop waits in
        "        yield env.sleep(1.0)\n"  # sim time: one lap per grant
    )
    assert lint_source(hot_but_waiting, "repro/sim/loop.py", select=["PERF303"]) == []
    cold = (
        "def report(rows):\n"
        "    while rows:\n"
        "        print([rows.pop()])\n"
    )
    assert lint_source(cold, "repro/bench/report.py", select=["PERF303"]) == []


def test_perf303_snapshot_call_and_compare_tests_are_clean():
    src = (
        "def drain(queue, waiters):\n"
        "    while queue:\n"
        "        queue.pop().fire(list(waiters))\n"  # snapshot call: fine
        "    i = 0\n"
        "    while i < len(queue):\n"  # bounded scan, not a drain loop
        "        batch = [queue[i]]\n"
        "        i += 1\n"
    )
    assert lint_source(src, "repro/sim/loop.py", select=["PERF303"]) == []


# ------------------------------------------------------------- suppressions


def test_line_suppression_silences_one_line():
    src = (
        "import time\n\n"
        "a = time.time()  # repro-lint: disable=DET101\n"
        "b = time.time()\n"
    )
    found = lint_source(src, "repro/util/stats.py")
    assert len(found) == 1 and found[0].line == 4


def test_file_suppression_silences_whole_file():
    src = (
        "# repro-lint: disable-file=DET101 — test justification\n"
        "import time\n\n"
        "a = time.time()\nb = time.time()\n"
    )
    assert lint_source(src, "repro/util/stats.py") == []


def test_disable_all_on_a_line():
    src = (
        "import time\n\n"
        "a = time.time()  # repro-lint: disable=all\n"
    )
    assert lint_source(src, "repro/util/stats.py") == []


def test_suppression_is_code_specific():
    src = (
        "import time\n\n"
        "a = time.time()  # repro-lint: disable=DET106\n"
    )
    assert codes(lint_source(src, "repro/util/stats.py")) == ["DET101"]


# ----------------------------------------------------------------- baseline


def test_baseline_round_trip(tmp_path):
    findings = lint_source(
        "import time\n\na = time.time()\nb = time.time()\n",
        "repro/util/stats.py",
    )
    assert len(findings) == 2
    path = tmp_path / "baseline.txt"
    save_baseline(path, findings)
    loaded = load_baseline(path)
    assert filter_new(findings, loaded) == []


def test_baseline_budget_counts_duplicates(tmp_path):
    # Two findings with identical fingerprints: baselining one copy
    # still reports the second.
    findings = lint_source(
        "import time\n\ndef f():\n    a = time.time()\n    a = time.time()\n",
        "repro/util/stats.py",
    )
    assert len(findings) == 2
    assert findings[0].fingerprint() == findings[1].fingerprint()
    path = tmp_path / "baseline.txt"
    save_baseline(path, findings[:1])
    new = filter_new(findings, load_baseline(path))
    assert len(new) == 1


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.txt") == {}


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("not a valid record\n", encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(path)


def test_fingerprint_survives_line_shifts():
    before = lint_source(
        "import time\n\ndef f():\n    return time.time()\n",
        "repro/util/stats.py",
    )
    after = lint_source(
        "import time\n\n# a new comment shifting everything down\n\n"
        "def f():\n    return time.time()\n",
        "repro/util/stats.py",
    )
    assert before[0].fingerprint() == after[0].fingerprint()
    assert before[0].line != after[0].line


def test_shipped_tree_is_clean():
    """Acceptance: the shipped src/ tree has zero findings."""
    root = pathlib.Path(__file__).resolve().parent.parent
    report = lint_paths([root / "src"])
    assert report.findings == [], report.render()


# ------------------------------------------------------------ dynamic probe


def _run_order_sensitive() -> Environment:
    """Toy scenario whose behavior leans on same-timestamp tie order.

    Both processes initialize at t=0 with equal priority; whichever runs
    first decides whether ``b`` schedules an extra timeout, so the event
    count (and therefore the digest) depends on the tie-break.
    """
    env = Environment()
    state = {"flag": False}

    def a(env):
        state["flag"] = True
        yield env.timeout(1)

    def b(env):
        if state["flag"]:
            yield env.timeout(1)
        yield env.timeout(1)

    env.process(a(env), name="racer-a")
    env.process(b(env), name="racer-b")
    env.run()
    return env


def _run_order_independent() -> Environment:
    """Single process chain: no same-timestamp ties exist at all."""
    env = Environment()

    def solo(env):
        for _ in range(5):
            yield env.timeout(1)

    env.process(solo(env), name="solo")
    env.run()
    return env


def test_dynamic_detects_order_sensitive_scenario():
    report = check_tie_order(
        "toy", seed=0, runner=lambda name, seed: _run_order_sensitive()
    )
    assert report.instrumentation_ok, "FIFO drain must match the native loop"
    assert report.order_sensitive
    assert report.ties_seen >= 1
    # the offending site names the racing processes
    rendered = "\n".join(site.render() for site in report.tie_sites)
    assert "racer-a" in rendered and "racer-b" in rendered


def test_dynamic_passes_order_independent_scenario():
    report = check_tie_order(
        "toy", seed=0, runner=lambda name, seed: _run_order_independent()
    )
    assert report.instrumentation_ok
    assert not report.order_sensitive
    assert report.tie_sites == []


def test_fifo_drain_is_digest_neutral_with_until_events():
    """The instrumented loop must reproduce native semantics for the
    repeated ``run(until=process)`` pattern the benches use."""

    def scenario() -> Environment:
        env = Environment()

        def worker(env, delay):
            yield env.timeout(delay)
            yield env.timeout(delay)

        procs = [
            env.process(worker(env, d), name=f"w{d}") for d in (1, 1, 2)
        ]
        for p in procs:
            env.run(until=p)
        env.run()
        return env

    native = simulation_digest(scenario())
    with patched_tie_order("fifo"):
        drained = simulation_digest(scenario())
    assert native == drained


def test_rule_catalogue_is_complete():
    assert sorted(RULES) == [
        "DET101", "DET102", "DET103", "DET104", "DET105", "DET106",
        "DET107", "OWN401", "OWN402", "OWN403", "PERF301", "PERF302",
        "PERF303", "SIM201", "SIM202",
    ]


# ------------------------------------------------------------ OWN4xx rules


def test_own401_flags_stored_fabric_peer_reference():
    src = (
        "class Daemon:\n"
        "    def __init__(self, directory):\n"
        "        self.directory = directory\n"
        "\n"
        "    def bad(self, addr):\n"
        "        peer = self.directory.lookup(addr)\n"
        "        self.peer = peer\n"
    )
    found = lint_source(src, "repro/osd/custom.py", select=["OWN401"])
    assert codes(found) == ["OWN401"]
    assert "self.peer" in found[0].message


def test_own401_flags_mutation_through_peer_handle():
    src = (
        "class Daemon:\n"
        "    def __init__(self, directory):\n"
        "        self.directory = directory\n"
        "\n"
        "    def bad(self, addr):\n"
        "        peer = self.directory.lookup(addr)\n"
        "        peer.backlog = 5\n"
    )
    assert codes(
        lint_source(src, "repro/osd/custom.py", select=["OWN401"])
    ) == ["OWN401"]


def test_own401_clean_on_declared_wire_interface():
    src = (
        "class Daemon:\n"
        "    def __init__(self, directory):\n"
        "        self.directory = directory\n"
        "\n"
        "    def good(self, addr, payload):\n"
        "        peer = self.directory.lookup(addr)\n"
        "        peer._enqueue_incoming(payload, 0)\n"
    )
    assert lint_source(
        src, "repro/osd/custom.py", select=["OWN401", "OWN403"]
    ) == []


def test_own401_builder_flow_shared_instance_fanout():
    """Constructor-arg flow: one node-scoped instance must not fan out
    into several per-node constructors."""
    src = (
        "class CpuBlock:\n"
        "    def __init__(self, env):\n"
        "        self.env = env\n"
        "\n"
        "class NodeBox:\n"
        "    def __init__(self, cpu):\n"
        "        self.cpu = cpu\n"
        "\n"
        "def build_bad(env, n):\n"
        "    shared = CpuBlock(env)\n"
        "    nodes = []\n"
        "    for i in range(n):\n"
        "        nodes.append(NodeBox(shared))\n"
        "    return nodes\n"
    )
    found = lint_source(src, "repro/cluster/custom_builder.py",
                        select=["OWN401"])
    assert codes(found) == ["OWN401"]
    assert "shared" in found[0].message


def test_own401_builder_flow_clean_on_per_node_construction():
    src = (
        "class CpuBlock:\n"
        "    def __init__(self, env):\n"
        "        self.env = env\n"
        "\n"
        "class NodeBox:\n"
        "    def __init__(self, cpu):\n"
        "        self.cpu = cpu\n"
        "\n"
        "def build_good(env, n):\n"
        "    nodes = []\n"
        "    for i in range(n):\n"
        "        cpu = CpuBlock(env)\n"
        "        nodes.append(NodeBox(cpu))\n"
        "    return nodes\n"
    )
    assert lint_source(src, "repro/cluster/custom_builder.py",
                       select=["OWN401"]) == []


def test_own401_cross_module_constructor_flow(tmp_path):
    """The whole-program half: the shared instance's class lives in a
    different module, resolved through the project index."""
    hw = tmp_path / "repro" / "hw"
    cl = tmp_path / "repro" / "cluster"
    hw.mkdir(parents=True)
    cl.mkdir(parents=True)
    (hw / "gadget.py").write_text(
        "class Gadget:\n"
        "    def __init__(self, env):\n"
        "        self.env = env\n",
        encoding="utf-8",
    )
    (cl / "build2.py").write_text(
        "from ..hw.gadget import Gadget\n"
        "\n"
        "class Holder:\n"
        "    def __init__(self, gadget):\n"
        "        self.gadget = gadget\n"
        "\n"
        "def build(env, n):\n"
        "    g = Gadget(env)\n"
        "    out = []\n"
        "    for i in range(n):\n"
        "        out.append(Holder(g))\n"
        "    return out\n",
        encoding="utf-8",
    )
    report = lint_paths([tmp_path], select=["OWN401"])
    assert codes(report.findings) == ["OWN401"]
    assert report.findings[0].path == "repro/cluster/build2.py"


def test_own402_flags_module_level_mutable_container():
    src = "_CACHE = {}\n_OK = (1, 2)\n__all__ = ['x']\n"
    found = lint_source(src, "repro/osd/helper.py", select=["OWN402"])
    assert codes(found) == ["OWN402"]
    assert "_CACHE" in found[0].message


def test_own402_exempts_non_node_modules_and_manifested_registries():
    src = "_CACHE = {}\n"
    assert lint_source(src, "repro/util/helper.py", select=["OWN402"]) == []
    # repro.cluster.strategy._REGISTRY is declared in OWN402_ALLOWED
    reg = "_REGISTRY = {}\n"
    assert lint_source(reg, "repro/cluster/strategy.py",
                       select=["OWN402"]) == []


def test_own403_flags_undeclared_peer_read():
    src = (
        "class Daemon:\n"
        "    def __init__(self, directory):\n"
        "        self.directory = directory\n"
        "\n"
        "    def bad(self, addr):\n"
        "        peer = self.directory.lookup(addr)\n"
        "        return peer.queue_depth\n"
    )
    found = lint_source(src, "repro/osd/custom.py", select=["OWN403"])
    assert codes(found) == ["OWN403"]
    assert "queue_depth" in found[0].message


def test_own403_clean_on_wire_interface_reads():
    src = (
        "class Daemon:\n"
        "    def __init__(self, directory):\n"
        "        self.directory = directory\n"
        "\n"
        "    def good(self, addr):\n"
        "        peer = self.directory.lookup(addr)\n"
        "        return peer.down or peer.epoch\n"
    )
    assert lint_source(src, "repro/osd/custom.py", select=["OWN403"]) == []


def test_perf303_covers_machine_callback_bodies():
    src = (
        "from ..sim.machine import Machine\n"
        "\n"
        "class Pump(Machine):\n"
        "    def _s_go(self, event):\n"
        "        self.items = [1, 2]\n"
        "\n"
        "    def fine(self, event):\n"
        "        self.count = 0\n"
    )
    found = lint_source(src, "repro/hw/custom.py", select=["PERF303"])
    assert codes(found) == ["PERF303"]
    assert "Pump._s_go" in found[0].message


def test_ownership_graph_classifies_shipped_tree():
    """Acceptance: every node-scoped class classified, report non-empty,
    the declared fabric classes land in the fabric role."""
    from repro.lint import Role, ownership_graph, render_ownership_report

    root = pathlib.Path(__file__).resolve().parent.parent
    report = lint_paths([root / "src"], select=["OWN401"])
    graph = ownership_graph(report.project)
    node_classes = [
        c for c in graph.classes.values() if c.role is Role.NODE
    ]
    assert len(node_classes) >= 30
    assert graph.classes["repro.hw.net.Network"].role is Role.FABRIC
    assert graph.classes["repro.rados.osdmap.OsdMap"].role is Role.SHARED
    rendered = render_ownership_report(graph)
    assert "node-scoped classes" in rendered
    assert "repro.osd.daemon.OsdDaemon" in rendered


# ------------------------------------------------------- ownership sanitizer


def _mini_runner(name: str, seed: int) -> Environment:
    """A bench run small enough for unit tests (~1000s of events)."""
    from repro.bench.radosbench import run_rados_bench
    from repro.cluster.builder import build_baseline_cluster

    env = Environment()
    cluster = build_baseline_cluster(env)
    run_rados_bench(
        cluster, object_size=64 * 1024, clients=2, duration=0.3,
        warmup=0.0, seed=seed,
    )
    return env


def test_sanitizer_zero_perturbation_and_clean_mini_run():
    """The armed run reproduces the plain digest byte-for-byte, finds no
    violations, and un-arming leaves no trace (third run matches too)."""
    from repro.lint import run_sanitized

    report = run_sanitized("mini", seed=0, runner=_mini_runner)
    assert report.instrumentation_ok, (
        report.plain_digest, report.sanitized_digest
    )
    assert report.violations == [], [v.render() for v in report.violations]
    assert report.mutations > 1000
    assert any(o.startswith("node:") for o in report.objects_by_owner)
    # sanitizer fully disarmed: a fresh plain run still matches
    after = simulation_digest(_mini_runner("mini", 0))
    assert after == report.plain_digest


def test_sanitizer_catches_dynamic_attribute_violation():
    """A cross-node setattr through a *computed* attribute name — the
    static pass cannot see it, the sanitizer must."""
    from repro.cluster.builder import build_baseline_cluster
    from repro.lint import OwnershipSanitizer
    from repro.osd.daemon import OsdDaemon

    env = Environment()
    cluster = build_baseline_cluster(env)
    san = OwnershipSanitizer()
    san.tag_cluster(cluster)

    def evil(self, victim, attr_name):
        setattr(victim, attr_name, 0)

    OsdDaemon.evil = evil
    try:
        victim = cluster.nodes[1].nic.rx  # node:1's rx BandwidthPipe
        name = "".join(["bytes", "_", "transferred"])  # dynamic name
        with san.armed():
            cluster.osds[0].evil(victim, name)
    finally:
        del OsdDaemon.evil
    assert len(san.violations) == 1
    v = san.violations[0]
    assert v.attr == "bytes_transferred"
    assert v.actor_owner == "node:0"
    assert v.target_owner == "node:1"
    assert "BandwidthPipe" in v.target_cls


def test_sanitizer_allows_owner_mutation():
    """The same mutation performed by the owning node is not flagged."""
    from repro.cluster.builder import build_baseline_cluster
    from repro.lint import OwnershipSanitizer
    from repro.osd.daemon import OsdDaemon

    env = Environment()
    cluster = build_baseline_cluster(env)
    san = OwnershipSanitizer()
    san.tag_cluster(cluster)

    def poke(self, victim, attr_name):
        setattr(victim, attr_name, 0)

    OsdDaemon.poke = poke
    try:
        victim = cluster.nodes[1].nic.rx
        with san.armed():
            cluster.osds[1].poke(victim, "bytes_transferred")
    finally:
        del OsdDaemon.poke
    assert san.violations == []
    assert san.mutations >= 1
