"""Failure-detection and recovery tests: monitor beacons, down/out
transitions, PG remapping, and continued writes after failover."""

import pytest

from repro.cluster import BENCH_POOL, HardwareProfile, build_baseline_cluster
from repro.rados import OsdState
from repro.sim import Environment


def make_cluster(nodes=3, replication=2):
    env = Environment()
    profile = HardwareProfile(storage_nodes=nodes, replication=replication,
                              pg_num=32)
    c = build_baseline_cluster(env, profile)
    boot = env.process(c.boot())
    env.run(until=boot)
    return env, c


def silence_osd(cluster, osd_id):
    """Make an OSD disappear: stop its beacons reaching the monitor by
    removing the monitor's view of it being refreshed (we simply stop
    the beacon process by monkey-patching last_beacon ageing is driven
    by real silence, so interrupt the messenger's beacon loop)."""
    # The beacon loop is a process named f"osd.{id}.beacon"; easiest
    # deterministic silencing: drop beacons at the monitor.
    mon = cluster.mon
    original = mon.ms_dispatch

    def dropping_dispatch(msg, conn):
        from repro.msgr import MOSDBeacon

        if isinstance(msg, MOSDBeacon) and msg.osd_id == osd_id:
            release = getattr(msg, "throttle_release", None)
            if release is not None:
                release()
            if False:
                yield
            return
        yield from original(msg, conn)

    mon.ms_dispatch = dropping_dispatch
    # re-register so the messenger uses the wrapper
    mon.messenger.register_dispatcher(mon)


def test_monitor_marks_silent_osd_down_then_out():
    env, c = make_cluster()
    env.run(until=env.now + 3.0)  # beacons establish
    silence_osd(c, 0)
    env.run(until=env.now + c.mon.down_grace + 2.5)
    assert c.osdmap.osds[0].state == OsdState.DOWN_IN
    env.run(until=env.now + c.mon.out_interval + 2.0)
    assert c.osdmap.osds[0].state == OsdState.DOWN_OUT


def test_pgs_remap_after_out():
    env, c = make_cluster(nodes=3)
    pgs_with_0 = [
        pgid for pgid in c.osdmap.all_pgs(BENCH_POOL)
        if 0 in c.osdmap.pg_to_osds(pgid)
    ]
    assert pgs_with_0
    c.osdmap.mark_out(0)
    for pgid in pgs_with_0:
        acting = c.osdmap.pg_to_osds(pgid)
        assert 0 not in acting
        assert len(acting) == 2  # re-replicated across survivors


def test_writes_continue_after_failover():
    env, c = make_cluster(nodes=3)
    client = c.client

    def phase1():
        result = yield from client.write_object(BENCH_POOL, "pre", 1 << 20)
        return result

    p = env.process(phase1())
    env.run(until=p)
    assert p.value.result == 0

    # osd.0 leaves the cluster
    c.osdmap.mark_out(0)

    def phase2():
        results = []
        for i in range(10):
            r = yield from client.write_object(BENCH_POOL, f"post-{i}",
                                               1 << 20)
            results.append(r.result)
        return results

    p2 = env.process(phase2())
    env.run(until=p2)
    assert all(code == 0 for code in p2.value)
    # nothing landed on the failed OSD's store
    store0 = c.stores[0]
    for objects in store0.collections.values():
        for name in objects:
            assert not name.startswith("post-")


def test_beacon_from_recovered_osd_marks_up():
    env, c = make_cluster()
    c.osdmap.mark_down(0)
    assert c.osdmap.osds[0].state == OsdState.DOWN_IN
    # the OSD keeps beaconing (it never actually died in this test),
    # so the monitor brings it back on the next beacon
    env.run(until=env.now + 2.5)
    assert c.osdmap.osds[0].state == OsdState.UP_IN


def test_three_node_cluster_replicates_across_hosts():
    env, c = make_cluster(nodes=3, replication=3)
    client = c.client

    def work():
        r = yield from client.write_object(BENCH_POOL, "tri", 1 << 20)
        return r

    p = env.process(work())
    env.run(until=p)
    assert p.value.result == 0
    found = sum(
        1
        for store in c.stores
        for objects in store.collections.values()
        if "tri" in objects
    )
    assert found == 3
