"""Wire adversary + end-to-end message integrity.

Covers the tentpole contract from both sides:

* every adversary kind (corrupt/truncate/dup/reorder/jitter) is
  injected on a live messenger pair and the seq/CRC/retransmit layer
  recovers — every message is dispatched exactly once, in order, with
  its payload identity intact;
* the reconnect edges: a half-open connection (receiver restarted,
  sender unaware), a duplicate frame straddling a connection reset, and
  a reorder burst as deep as the in-flight window;
* determinism: every scenario, run twice, produces identical delivery
  sequences, wire counters and simulated clocks.
"""

import pytest

from repro.faults import FaultPlan, parse_fault_specs
from repro.hw import Network
from repro.msgr import AsyncMessenger, MOSDOp, MsgrDirectory, OpType
from repro.msgr.messenger import WireFrame
from repro.sim import Environment
from repro.util import DataBlob

from tests.helpers import make_stack


class RecordingDispatcher:
    def __init__(self):
        self.received = []

    def ms_dispatch(self, msg, conn):
        self.received.append(msg)
        if False:
            yield


def build_pair(env, workers=2):
    net = Network(env, latency_s=10e-6)
    directory = MsgrDirectory()
    a = AsyncMessenger(
        make_stack(env, net, "a", bandwidth_bps=100e9, cores=4),
        "ms.a", directory, workers=workers,
    )
    b = AsyncMessenger(
        make_stack(env, net, "b", bandwidth_bps=100e9, cores=4),
        "ms.b", directory, workers=workers,
    )
    return a, b


def _send_ops(a, n, start=0, size=1 << 16):
    blobs = []
    for i in range(start, start + n):
        blob = DataBlob(size)
        blobs.append(blob)
        a.send_message(
            MOSDOp(tid=i, pool="p", object_name=f"o{i}", op=OpType.WRITE,
                   length=size, data=blob),
            "b",
        )
    return blobs


def _run_adversary_scenario(faults, seed=0, n=6):
    """One messenger-pair run under ``faults``; returns the evidence."""
    env = Environment()
    a, b = build_pair(env)
    sink = RecordingDispatcher()
    b.register_dispatcher(sink)
    plan = FaultPlan(seed=seed, specs=parse_fault_specs(faults))
    plan.attach_msgr(a, "a")
    blobs = _send_ops(a, n)
    env.run(until=2.0)
    return {
        "tids": [m.tid for m in sink.received],
        "blobs": [m.data for m in sink.received],
        "sent_blobs": blobs,
        "wire_a": dict(a.wire_stats),
        "wire_b": dict(b.wire_stats),
        "injected": dict(plan.injected),
        "now": env.now,
    }


def _replayable(out):
    """The cross-run-comparable projection (blob ids are a process-wide
    counter, so the blob objects themselves differ between runs)."""
    return {k: v for k, v in out.items() if k not in ("blobs", "sent_blobs")}


# ------------------------------------------------------------ per-kind


def test_corrupt_detected_and_recovered():
    out = _run_adversary_scenario("net:corrupt,nth=1")
    assert out["injected"].get("net.corrupt", 0) >= 1
    assert out["wire_b"].get("crc_rejected", 0) >= 1
    assert out["wire_a"].get("retransmit", 0) >= 1
    # recovery is complete: exactly-once, in-order, payloads intact
    assert out["tids"] == list(range(6))
    assert out["blobs"] == out["sent_blobs"]


def test_truncate_detected_and_recovered():
    out = _run_adversary_scenario("net:truncate,nth=1")
    assert out["injected"].get("net.truncate", 0) >= 1
    assert out["wire_b"].get("crc_rejected", 0) >= 1
    assert out["tids"] == list(range(6))
    assert out["blobs"] == out["sent_blobs"]


def test_duplicate_suppressed():
    out = _run_adversary_scenario("net:dup,nth=1")
    assert out["injected"].get("net.dup", 0) >= 1
    assert out["wire_b"].get("dup_suppressed", 0) >= 1
    assert out["tids"] == list(range(6))


def test_reorder_restored_in_order():
    out = _run_adversary_scenario("net:reorder,nth=1")
    assert out["injected"].get("net.reorder", 0) >= 1
    # the held-back frame forced a gap on the receiver
    assert out["wire_b"].get("gap", 0) >= 1
    assert out["tids"] == list(range(6))
    assert out["blobs"] == out["sent_blobs"]


def test_jitter_delivers_everything():
    out = _run_adversary_scenario("net:jitter,p=1,delay=0.002")
    assert out["injected"].get("net.jitter", 0) >= 1
    assert sorted(out["tids"]) == list(range(6))
    assert set(out["blobs"]) == set(out["sent_blobs"])


@pytest.mark.parametrize("faults", [
    "net:corrupt,p=0.5",
    "net:dup,p=0.5;net:reorder,p=0.3",
    "net:corrupt,p=0.3;net:truncate,p=0.2;net:jitter,p=0.3,delay=0.001",
])
def test_adversary_runs_are_deterministic(faults):
    first = _run_adversary_scenario(faults, seed=7)
    second = _run_adversary_scenario(faults, seed=7)
    assert _replayable(first) == _replayable(second)


def test_adversary_stream_is_isolated_from_other_specs():
    """The adversary draws from its own derived stream: adding an
    unrelated (unattached) spec to the plan must not shift a single
    adversary decision."""
    alone = _run_adversary_scenario("net:corrupt,p=0.5", seed=7)
    mixed = _run_adversary_scenario("dma,p=0.5;net:corrupt,p=0.5", seed=7)
    assert alone["injected"].get("net.corrupt") == \
        mixed["injected"].get("net.corrupt")
    assert alone["tids"] == mixed["tids"]
    assert alone["now"] == mixed["now"]


# ------------------------------------------------------------ reconnect edges


def _half_open_run():
    """Receiver restarts silently mid-stream; the sender's next frame
    lands with a 40-deep sequence gap on a peer with no history, which
    must resolve as a *session* reset (drop queued history, fresh
    epoch), not a replay of 40 stale frames."""
    env = Environment()
    a, b = build_pair(env)
    sink = RecordingDispatcher()
    b.register_dispatcher(sink)
    _send_ops(a, 40)
    env.run(until=0.5)
    b.shutdown()
    b.startup()
    # the probe lands mid-stream on a peer with empty rx state and is
    # sacrificed to the session reset (message-level retry owns it)
    _send_ops(a, 1, start=100)
    env.run(until=0.7)
    _send_ops(a, 4, start=200)
    env.run(until=1.5)
    return env, a, b, sink


def test_half_open_connection_recovers():
    env, a, b, sink = _half_open_run()
    assert b.wire_stats.get("reset_requested", 0) >= 1
    assert a.wire_stats.get("reset", 0) >= 1
    # pre-restart history was dropped, not resurrected
    assert a.wire_stats.get("session_drop", 0) >= 1
    tids = [m.tid for m in sink.received]
    assert tids[:40] == list(range(40))
    # post-reset traffic flows on the fresh epoch; nothing re-dispatched
    assert tids[40:] == [200, 201, 202, 203]
    assert len(tids) == len(set(tids))


def test_half_open_recovery_is_deterministic():
    runs = []
    for _ in range(2):
        env, a, b, sink = _half_open_run()
        runs.append((
            [m.tid for m in sink.received],
            dict(a.wire_stats), dict(b.wire_stats), env.now,
        ))
    assert runs[0] == runs[1]


def _dup_across_reconnect_run():
    """A frame captured before a connection reset is replayed after it:
    the stale-epoch copy must be dropped, not re-dispatched."""
    env = Environment()
    a, b = build_pair(env)
    sink = RecordingDispatcher()
    b.register_dispatcher(sink)
    _send_ops(a, 3)
    env.run(until=0.5)
    conn = a.connect("b")
    live = next(iter(conn._resend.values()))
    # snapshot the wire image before reset() renumbers the live frame
    stale = WireFrame(live.seq, live.epoch, live.crc, live.bl,
                      live.attachment, live.wire, None)
    conn.reset()
    env.run(until=0.7)
    b._enqueue_incoming("a", stale, stale.bl)
    _send_ops(a, 3, start=10)
    env.run(until=1.5)
    return env, a, b, sink


def test_duplicate_frame_straddling_reconnect_dropped():
    env, a, b, sink = _dup_across_reconnect_run()
    assert b.wire_stats.get("stale_drop", 0) >= 1
    assert b.wire_stats.get("reset_seen", 0) >= 1
    tids = [m.tid for m in sink.received]
    # original batch, the reset's in-flight resend of the same batch
    # (absorbed upstream by message-level tids), then the new batch —
    # the straddling stale frame itself was never re-dispatched
    assert tids == [0, 1, 2, 0, 1, 2, 10, 11, 12]


def test_duplicate_across_reconnect_deterministic():
    runs = []
    for _ in range(2):
        env, a, b, sink = _dup_across_reconnect_run()
        runs.append((
            [m.tid for m in sink.received],
            dict(a.wire_stats), dict(b.wire_stats), env.now,
        ))
    assert runs[0] == runs[1]


class _CaptureEndpoint:
    """Directory stand-in that records frames instead of receiving."""

    def __init__(self):
        self.frames = []

    def _enqueue_incoming(self, src_addr, frame, bl):
        self.frames.append((frame, bl))


def _deep_reorder_run(depth=8):
    """Deliver ``depth`` in-flight frames in full reverse order (the
    sender is gone, so no retransmission can help): the reorder buffer
    alone must restore the stream."""
    env = Environment()
    a, b = build_pair(env)
    sink = RecordingDispatcher()
    b.register_dispatcher(sink)
    capture = _CaptureEndpoint()
    a.directory._endpoints["b"] = capture
    _send_ops(a, depth)
    env.run(until=0.5)
    a.directory._endpoints["b"] = b
    assert len(capture.frames) == depth
    # sender dies: nacks find no live connection, so nothing is resent
    a.shutdown()
    for frame, bl in reversed(capture.frames):
        b._enqueue_incoming("a", frame, bl)
    env.run(until=1.5)
    return env, a, b, sink


def test_reorder_window_covers_in_flight_depth():
    env, a, b, sink = _deep_reorder_run(depth=8)
    tids = [m.tid for m in sink.received]
    # exactly once each, restored to send order
    assert tids == list(range(8))
    assert b.wire_stats.get("gap", 0) >= 7


def test_deep_reorder_deterministic():
    runs = []
    for _ in range(2):
        env, a, b, sink = _deep_reorder_run(depth=8)
        runs.append((
            [m.tid for m in sink.received],
            dict(a.wire_stats), dict(b.wire_stats), env.now,
        ))
    assert runs[0] == runs[1]


# ------------------------------------------------------------ defense proof


def test_verification_disabled_lets_corruption_through():
    """Test-only hook: with CRC verification off, the corrupt adversary
    delivers a swapped payload — proving the check is load-bearing."""
    try:
        AsyncMessenger.verify_frames = False
        out = _run_adversary_scenario("net:corrupt,nth=1")
    finally:
        AsyncMessenger.verify_frames = True
    assert out["wire_b"].get("crc_rejected", 0) == 0
    # some dispatched payload is no longer the blob that was sent
    assert out["blobs"] != out["sent_blobs"]
