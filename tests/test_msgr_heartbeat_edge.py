"""Edge-case tests for heartbeats and messenger internals."""

import pytest

from repro.hw import Network
from repro.msgr import (
    AsyncMessenger,
    HeartbeatAgent,
    MessengerCostModel,
    MOSDPing,
    MsgrDirectory,
)
from repro.sim import Environment

from tests.helpers import make_stack


def build_pair(env):
    net = Network(env, latency_s=10e-6)
    directory = MsgrDirectory()
    a = AsyncMessenger(make_stack(env, net, "a"), "ms.a", directory)
    b = AsyncMessenger(make_stack(env, net, "b"), "ms.b", directory)
    return a, b


def test_heartbeat_agent_no_peers_is_quiet():
    env = Environment()
    a, b = build_pair(env)
    agent = HeartbeatAgent(a, [], interval=0.5)
    env.run(until=3.0)
    assert a.messages_sent == 0
    assert agent.healthy_peers(env.now) == []
    assert agent.stale_peers(env.now) == []


def test_heartbeat_handle_ping_reply_returns_none():
    env = Environment()
    a, b = build_pair(env)
    agent = HeartbeatAgent(a, ["b"], interval=10.0)
    reply_msg = MOSDPing(src="b", tid=1, is_reply=True, stamp=0.0)
    assert agent.handle_ping(reply_msg) is None
    assert agent.last_seen["b"] == env.now


def test_heartbeat_phase_offsets_desynchronize():
    """Multiple peers' beats are phase-shifted, not simultaneous."""
    env = Environment()
    net = Network(env, latency_s=10e-6)
    directory = MsgrDirectory()
    hub = AsyncMessenger(make_stack(env, net, "hub"), "hub", directory)
    peers = []
    for name in ("p1", "p2", "p3"):
        peer = AsyncMessenger(make_stack(env, net, name), name, directory)
        arrivals = []

        class Sink:
            def __init__(self, arrivals):
                self.arrivals = arrivals

            def ms_dispatch(self, msg, conn):
                self.arrivals.append(env.now)
                if False:
                    yield

        peer.register_dispatcher(Sink(arrivals))
        peers.append(arrivals)
    HeartbeatAgent(hub, ["p1", "p2", "p3"], interval=1.0)
    env.run(until=0.5)
    firsts = [arr[0] for arr in peers if arr]
    assert len(firsts) == 3
    assert len(set(round(t, 9) for t in firsts)) == 3  # distinct phases


def test_messenger_cost_model_scaling():
    cost = MessengerCostModel(encode_fixed=1e-6, decode_fixed=2e-6,
                              crc_bandwidth=1e9)
    assert cost.encode_cpu(1_000_000) == pytest.approx(1e-6 + 1e-3)
    assert cost.decode_cpu(0) == pytest.approx(2e-6)


def test_send_to_self_address_loopback():
    """A messenger can send to its own address (mon co-located cases);
    the wire is skipped but dispatch still happens."""
    env = Environment()
    net = Network(env, latency_s=10e-6)
    directory = MsgrDirectory()
    a = AsyncMessenger(make_stack(env, net, "solo"), "solo", directory)
    got = []

    class Sink:
        def ms_dispatch(self, msg, conn):
            got.append(msg.tid)
            if False:
                yield

    a.register_dispatcher(Sink())
    a.send_message(MOSDPing(tid=42), "solo")
    env.run(until=1.0)
    assert got == [42]


def test_messages_between_three_parties_no_crosstalk():
    env = Environment()
    net = Network(env, latency_s=10e-6)
    directory = MsgrDirectory()
    received = {}
    messengers = {}
    for name in ("x", "y", "z"):
        m = AsyncMessenger(make_stack(env, net, name), name, directory)
        received[name] = []

        class Sink:
            def __init__(self, box):
                self.box = box

            def ms_dispatch(self, msg, conn):
                self.box.append((msg.src, msg.tid))
                if False:
                    yield

        m.register_dispatcher(Sink(received[name]))
        messengers[name] = m

    messengers["x"].send_message(MOSDPing(tid=1), "y")
    messengers["x"].send_message(MOSDPing(tid=2), "z")
    messengers["y"].send_message(MOSDPing(tid=3), "z")
    env.run(until=1.0)
    assert received["y"] == [("x", 1)]
    assert sorted(received["z"]) == [("x", 2), ("y", 3)]
    assert received["x"] == []
