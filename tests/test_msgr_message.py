"""Tests for wire message encoding/decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msgr import (
    MMonGetMap,
    MMonMapReply,
    MOSDOp,
    MOSDOpReply,
    MOSDPing,
    MOSDRepOp,
    MOSDRepOpReply,
    OpType,
    WIRE_OVERHEAD,
    decode_message,
)
from repro.util import BufferList, DataBlob, EncodeError


def roundtrip(msg):
    return decode_message(msg.encode(), attachment=msg.attachment)


def test_osd_op_roundtrip_with_data():
    blob = DataBlob(4 * 1024 * 1024)
    msg = MOSDOp(
        src="client0", tid=7, pool="bench", object_name="obj-42",
        op=OpType.WRITE, length=blob.length, data=blob, map_epoch=3,
    )
    out = roundtrip(msg)
    assert isinstance(out, MOSDOp)
    assert out == msg
    assert out.data == blob
    assert out.data_len == 4 * 1024 * 1024


def test_osd_op_roundtrip_without_data():
    msg = MOSDOp(src="c", tid=1, pool="p", object_name="o",
                 op=OpType.READ, length=1024)
    out = roundtrip(msg)
    assert out == msg
    assert out.data is None
    assert out.data_len == 0


def test_op_reply_roundtrip():
    msg = MOSDOpReply(src="osd.0", tid=7, result=0, version=12)
    assert roundtrip(msg) == msg
    read_reply = MOSDOpReply(src="osd.0", tid=8, result=0,
                             data=DataBlob(8192))
    out = roundtrip(read_reply)
    assert out.data.length == 8192


def test_repop_roundtrip():
    blob = DataBlob(1 << 20)
    msg = MOSDRepOp(src="osd.0", tid=3, pool="bench", pg_seed=17,
                    object_name="o", length=blob.length, data=blob,
                    map_epoch=5)
    out = roundtrip(msg)
    assert out == msg


def test_repop_reply_roundtrip():
    msg = MOSDRepOpReply(src="osd.1", tid=3, result=0)
    assert roundtrip(msg) == msg


def test_ping_roundtrip():
    msg = MOSDPing(src="osd.0", tid=9, is_reply=True, stamp=123.5)
    assert roundtrip(msg) == msg


def test_mon_messages_roundtrip():
    get = MMonGetMap(src="client", tid=1, have_epoch=4)
    assert roundtrip(get) == get
    reply = MMonMapReply(src="mon", tid=1, epoch=9, map_bytes=8192)
    reply.attachment = {"the": "map"}
    out = roundtrip(reply)
    assert out.epoch == 9
    assert out.map_bytes == 8192
    assert out.attachment == {"the": "map"}
    assert out.data_len == 8192


def test_wire_size_includes_payload_and_overhead():
    small = MOSDOp(src="c", tid=1, pool="p", object_name="o",
                   op=OpType.WRITE, length=0)
    big = MOSDOp(src="c", tid=1, pool="p", object_name="o",
                 op=OpType.WRITE, length=1 << 20, data=DataBlob(1 << 20))
    assert big.wire_size() - small.wire_size() == (1 << 20)
    assert small.wire_size() > WIRE_OVERHEAD


def test_unknown_type_rejected():
    bl = BufferList()
    bl.encode_u16(9999)
    bl.encode_u64(0)
    bl.encode_str("x")
    with pytest.raises(EncodeError):
        decode_message(bl)


@given(
    tid=st.integers(min_value=0, max_value=2**63),
    name=st.text(min_size=0, max_size=40),
    length=st.integers(min_value=0, max_value=1 << 30),
    op=st.sampled_from(list(OpType)),
    epoch=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=100)
def test_osd_op_roundtrip_property(tid, name, length, op, epoch):
    data = DataBlob(length) if op == OpType.WRITE else None
    msg = MOSDOp(src="client", tid=tid, pool="pool", object_name=name,
                 op=op, length=length, data=data, map_epoch=epoch)
    out = roundtrip(msg)
    assert out == msg
    assert out.wire_size() == msg.wire_size()
