"""Tests for the AsyncMessenger: delivery, ordering, accounting,
throttling, and heartbeats."""

import pytest

from repro.hw import Network
from repro.msgr import (
    AsyncMessenger,
    HeartbeatAgent,
    MOSDPing,
    MOSDOp,
    MsgrDirectory,
    MSGR_CATEGORY,
    OpType,
)
from repro.sim import Environment
from repro.util import DataBlob

from tests.helpers import make_stack


class RecordingDispatcher:
    """Collects every dispatched message."""

    def __init__(self):
        self.received = []

    def ms_dispatch(self, msg, conn):
        self.received.append(msg)
        if False:  # make this a generator
            yield


class EchoPingDispatcher:
    """Replies to pings, records replies."""

    def __init__(self, messenger, agent=None):
        self.messenger = messenger
        self.agent = agent
        self.pings = []

    def ms_dispatch(self, msg, conn):
        self.pings.append(msg)
        if isinstance(msg, MOSDPing) and not msg.is_reply:
            if self.agent is not None:
                reply = self.agent.handle_ping(msg)
            else:
                reply = MOSDPing(tid=msg.tid, is_reply=True, stamp=msg.stamp)
            if reply is not None:
                self.messenger.send_message(reply, msg.src)
        elif self.agent is not None:
            self.agent.handle_ping(msg)
        if False:
            yield


def build_pair(env, bandwidth=100e9, workers=3, throttle=None, cores=4):
    net = Network(env, latency_s=10e-6)
    directory = MsgrDirectory()
    a = AsyncMessenger(
        make_stack(env, net, "a", bandwidth_bps=bandwidth, cores=cores),
        "ms.a", directory, workers=workers, throttle_bytes=throttle,
    )
    b = AsyncMessenger(
        make_stack(env, net, "b", bandwidth_bps=bandwidth, cores=cores),
        "ms.b", directory, workers=workers, throttle_bytes=throttle,
    )
    return a, b


def test_message_delivered_and_decoded():
    env = Environment()
    a, b = build_pair(env)
    sink = RecordingDispatcher()
    b.register_dispatcher(sink)

    a.send_message(MOSDPing(tid=5, stamp=1.0), "b")
    env.run(until=1.0)

    assert len(sink.received) == 1
    msg = sink.received[0]
    assert isinstance(msg, MOSDPing)
    assert msg.tid == 5
    assert msg.src == "a"


def test_bulk_payload_rides_along():
    env = Environment()
    a, b = build_pair(env)
    sink = RecordingDispatcher()
    b.register_dispatcher(sink)

    blob = DataBlob(1 << 20)
    a.send_message(
        MOSDOp(tid=1, pool="p", object_name="o", op=OpType.WRITE,
               length=blob.length, data=blob),
        "b",
    )
    env.run(until=1.0)
    assert sink.received[0].data == blob


def test_per_connection_ordering():
    env = Environment()
    a, b = build_pair(env, workers=3)
    sink = RecordingDispatcher()
    b.register_dispatcher(sink)

    for i in range(20):
        # Alternate big and small so the wire pump would reorder them if
        # it could.
        size = (1 << 22) if i % 2 == 0 else 64
        a.send_message(
            MOSDOp(tid=i, pool="p", object_name=f"o{i}", op=OpType.WRITE,
                   length=size, data=DataBlob(size)),
            "b",
        )
    env.run(until=5.0)
    tids = [m.tid for m in sink.received]
    assert tids == list(range(20))


def test_cpu_charged_to_msgr_category_on_both_ends():
    env = Environment()
    a, b = build_pair(env)
    b.register_dispatcher(RecordingDispatcher())

    blob = DataBlob(4 << 20)
    a.send_message(
        MOSDOp(tid=1, pool="p", object_name="o", op=OpType.WRITE,
               length=blob.length, data=blob),
        "b",
    )
    env.run(until=2.0)
    sender_busy = a.stack.cpu.accounting.busy_by_category.get(MSGR_CATEGORY, 0)
    receiver_busy = b.stack.cpu.accounting.busy_by_category.get(MSGR_CATEGORY, 0)
    assert sender_busy > 0
    assert receiver_busy > sender_busy  # recv path is pricier


def test_context_switches_recorded():
    env = Environment()
    a, b = build_pair(env)
    b.register_dispatcher(RecordingDispatcher())
    a.send_message(MOSDPing(tid=1), "b")
    env.run(until=1.0)
    assert a.stack.cpu.accounting.ctx_by_category.get(MSGR_CATEGORY, 0) >= 1
    assert b.stack.cpu.accounting.ctx_by_category.get(MSGR_CATEGORY, 0) >= 2


def test_statistics_track_messages_and_bytes():
    env = Environment()
    a, b = build_pair(env)
    b.register_dispatcher(RecordingDispatcher())
    blob = DataBlob(1000)
    a.send_message(
        MOSDOp(tid=1, pool="p", object_name="o", op=OpType.WRITE,
               length=1000, data=blob), "b")
    env.run(until=1.0)
    assert a.messages_sent == 1
    assert b.messages_received == 1
    assert a.bytes_sent == b.bytes_received
    assert a.bytes_sent > 1000


def test_connection_reuse():
    env = Environment()
    a, b = build_pair(env)
    b.register_dispatcher(RecordingDispatcher())
    c1 = a.connect("b")
    c2 = a.connect("b")
    assert c1 is c2


def test_round_robin_worker_assignment():
    env = Environment()
    net = Network(env)
    directory = MsgrDirectory()
    hub = AsyncMessenger(make_stack(env, net, "hub"), "hub", directory,
                         workers=2)
    for name in ("p1", "p2", "p3"):
        make_stack(env, net, name)
    workers = [hub.connect(p).worker for p in ("p1", "p2", "p3")]
    assert workers[0] is not workers[1]
    assert workers[0] is workers[2]


def test_duplicate_address_rejected():
    env = Environment()
    net = Network(env)
    directory = MsgrDirectory()
    stack = make_stack(env, net, "x")
    AsyncMessenger(stack, "m1", directory)
    with pytest.raises(ValueError):
        AsyncMessenger(stack, "m2", directory)


def test_unknown_peer_rejected():
    directory = MsgrDirectory()
    with pytest.raises(ValueError):
        directory.lookup("ghost")


def test_throttle_limits_inflight_dispatch():
    """With a tiny throttle, the second message waits until the first
    releases."""
    env = Environment()
    a, b = build_pair(env, throttle=2000)

    class HoldingDispatcher:
        def __init__(self):
            self.got = []

        def ms_dispatch(self, msg, conn):
            self.got.append((env.now, msg.tid))
            if False:
                yield

    sink = HoldingDispatcher()
    b.register_dispatcher(sink)

    blob = DataBlob(1500)
    for i in range(2):
        a.send_message(
            MOSDOp(tid=i, pool="p", object_name=f"o{i}", op=OpType.WRITE,
                   length=1500, data=blob.slice(0, 1500)),
            "b",
        )
    env.run(until=0.5)
    # Only the first message fits under the 2000-byte throttle.
    assert [t for _, t in sink.got] == [0]
    # Refill the throttle (as the op-completion release hook would).
    b.throttle.put(2000 - b.throttle.level)
    env.run(until=1.0)
    assert [t for _, t in sink.got] == [0, 1]


def test_workers_validation():
    env = Environment()
    net = Network(env)
    directory = MsgrDirectory()
    stack = make_stack(env, net, "x")
    with pytest.raises(ValueError):
        AsyncMessenger(stack, "m", directory, workers=0)


def test_heartbeat_ping_pong_and_liveness():
    env = Environment()
    a, b = build_pair(env)
    agent_a = HeartbeatAgent(a, ["b"], interval=0.5, grace=2.0)
    agent_b = HeartbeatAgent(b, [], interval=0.5)
    a.register_dispatcher(EchoPingDispatcher(a, agent_a))
    b.register_dispatcher(EchoPingDispatcher(b, agent_b))

    env.run(until=3.0)
    assert agent_a.healthy_peers(env.now) == ["b"]
    assert agent_a.stale_peers(env.now) == []
    # b never pings anyone but hears a's pings
    assert "a" in agent_b.last_seen


def test_heartbeat_detects_silence():
    env = Environment()
    a, b = build_pair(env)
    agent_a = HeartbeatAgent(a, ["b"], interval=0.5, grace=1.0)
    # b has no dispatcher -> never replies
    env.run(until=3.0)
    assert agent_a.stale_peers(env.now) == ["b"]
