"""Tests for the weighted priority op queue (WPQ)."""

import pytest

from repro.osd import (
    CLIENT_OP,
    RECOVERY_OP,
    SCRUB_OP,
    STRICT_THRESHOLD,
    SUB_OP,
    WeightedPriorityQueue,
)
from repro.sim import Environment


def drain(env, q, n):
    out = []

    def consumer():
        for _ in range(n):
            item = yield q.dequeue()
            out.append(item)

    p = env.process(consumer())
    env.run(until=p)
    return out


def test_fifo_within_class():
    env = Environment()
    q = WeightedPriorityQueue(env)
    for i in range(5):
        q.enqueue(i, CLIENT_OP)
    assert drain(env, q, 5) == [0, 1, 2, 3, 4]


def test_strict_band_preempts_weighted():
    env = Environment()
    q = WeightedPriorityQueue(env)
    q.enqueue("recovery", RECOVERY_OP)
    q.enqueue("subop", SUB_OP)
    q.enqueue("recovery2", RECOVERY_OP)
    out = drain(env, q, 3)
    assert out[0] == "subop"
    assert set(out[1:]) == {"recovery", "recovery2"}


def test_strict_ordering_among_strict():
    env = Environment()
    q = WeightedPriorityQueue(env)
    q.enqueue("a", SUB_OP)      # 127
    q.enqueue("b", STRICT_THRESHOLD)  # 64
    q.enqueue("c", SUB_OP)
    assert drain(env, q, 3) == ["a", "c", "b"]


def test_client_ops_weighted_over_recovery():
    """Client ops (63) should win the weighted band far more often than
    recovery ops (5) when both are backlogged."""
    env = Environment()
    q = WeightedPriorityQueue(env, seed=7)
    for i in range(200):
        q.enqueue(("client", i), CLIENT_OP)
        q.enqueue(("recovery", i), RECOVERY_OP)
    first_half = drain(env, q, 200)
    client_share = sum(1 for kind, _ in first_half if kind == "client") / 200
    # expected share ≈ 63/68 ≈ 0.93
    assert client_share > 0.8


def test_no_starvation_of_background():
    """Recovery items do eventually get served while clients keep
    arriving — WPQ is weighted, not strict."""
    env = Environment()
    q = WeightedPriorityQueue(env, seed=3)
    for i in range(300):
        q.enqueue(("client", i), CLIENT_OP)
    q.enqueue(("recovery", 0), RECOVERY_OP)
    served = drain(env, q, 150)
    assert ("recovery", 0) in served or len(q) > 0
    # drain the rest; recovery must appear overall
    rest = drain(env, q, len(q))
    assert ("recovery", 0) in served + rest


def test_dequeue_blocks_until_enqueue():
    env = Environment()
    q = WeightedPriorityQueue(env)
    got = []

    def consumer():
        item = yield q.dequeue()
        got.append((env.now, item))

    def producer():
        yield env.timeout(3)
        q.enqueue("late", CLIENT_OP)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(3, "late")]


def test_multiple_waiters_fifo():
    env = Environment()
    q = WeightedPriorityQueue(env)
    got = []

    def consumer(name):
        item = yield q.dequeue()
        got.append((name, item))

    env.process(consumer("first"))
    env.process(consumer("second"))

    def producer():
        yield env.timeout(1)
        q.enqueue("a", CLIENT_OP)
        q.enqueue("b", CLIENT_OP)

    env.process(producer())
    env.run()
    assert got == [("first", "a"), ("second", "b")]


def test_statistics():
    env = Environment()
    q = WeightedPriorityQueue(env)
    q.enqueue(1, CLIENT_OP)
    q.enqueue(2, RECOVERY_OP)
    assert q.enqueued == 2
    assert q.max_depth == 2
    assert q.depth_by_class() == {CLIENT_OP: 1, RECOVERY_OP: 1}
    drain(env, q, 2)
    assert q.dequeued == 2
    assert len(q) == 0


def test_negative_priority_rejected():
    env = Environment()
    q = WeightedPriorityQueue(env)
    with pytest.raises(ValueError):
        q.enqueue("x", -1)


def test_deterministic_with_same_seed():
    def run(seed):
        env = Environment()
        q = WeightedPriorityQueue(env, seed=seed)
        for i in range(50):
            q.enqueue(("c", i), CLIENT_OP)
            q.enqueue(("r", i), RECOVERY_OP)
            q.enqueue(("s", i), SCRUB_OP)
        return drain(env, q, 150)

    assert run(1) == run(1)
    assert run(1) != run(2)  # different seeds interleave differently
