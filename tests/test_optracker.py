"""Tests for the OpTracker (per-op stage tracing)."""

import pytest

from repro.cluster import BENCH_POOL, build_baseline_cluster, build_doceph_cluster
from repro.osd import OpTracker
from repro.sim import Environment


# ---------------------------------------------------------------- unit


def test_create_mark_complete():
    t = OpTracker()
    op = t.create("osd_op(WRITE p/o)", 1.0)
    assert op.events == [(1.0, "initiated")]
    assert op.op_id in t.in_flight
    op.mark(2.0, "queued_for_pg")
    op.mark(3.5, "commit_received")
    t.complete(op, 4.0)
    assert op.completed_at == 4.0
    assert op.duration == pytest.approx(3.0)
    assert op.op_id not in t.in_flight
    assert t.historic == [op]


def test_stage_durations():
    t = OpTracker()
    op = t.create("x", 0.0)
    op.mark(1.0, "a")
    op.mark(3.0, "b")
    t.complete(op, 6.0)
    stages = dict(op.stage_durations())
    assert stages["initiated"] == pytest.approx(1.0)
    assert stages["a"] == pytest.approx(2.0)
    assert stages["b"] == pytest.approx(3.0)
    assert op.stage_time("a") == pytest.approx(2.0)
    assert op.stage_time("missing") == 0.0


def test_stage_durations_in_flight_uses_now():
    t = OpTracker()
    op = t.create("x", 0.0)
    op.mark(1.0, "a")
    # still in flight: without `now` the ongoing stage reports zero
    assert dict(op.stage_durations())["a"] == pytest.approx(0.0)
    # with `now` the final stage reports its elapsed time so far
    stages = dict(op.stage_durations(now=4.0))
    assert stages["initiated"] == pytest.approx(1.0)
    assert stages["a"] == pytest.approx(3.0)
    assert op.stage_time("a", now=4.0) == pytest.approx(3.0)
    # a `now` before the last mark never yields a negative duration
    assert dict(op.stage_durations(now=0.5))["a"] == 0.0
    # completion takes precedence over `now`
    t.complete(op, 6.0)
    assert dict(op.stage_durations(now=99.0))["a"] == pytest.approx(5.0)


def test_history_ring_bounded():
    t = OpTracker(history_size=3)
    for i in range(10):
        op = t.create(f"op{i}", float(i))
        t.complete(op, float(i) + 0.5)
    assert len(t.historic) == 3
    assert [o.description for o in t.historic] == ["op7", "op8", "op9"]
    assert t.ops_tracked == 10


def test_slowest_ordering():
    t = OpTracker()
    for i, dur in enumerate([0.5, 2.0, 1.0]):
        op = t.create(f"op{i}", 0.0)
        t.complete(op, dur)
    slow = t.slowest(2)
    assert [o.description for o in slow] == ["op1", "op2"]


def test_invalid_history_size():
    with pytest.raises(ValueError):
        OpTracker(history_size=0)


def test_duration_none_while_in_flight():
    t = OpTracker()
    op = t.create("x", 0.0)
    assert op.duration is None
    assert t.dump_in_flight() == [op]
    assert t.dump_historic() == []


# ---------------------------------------------------------------- integrated


@pytest.mark.parametrize("builder", [build_baseline_cluster,
                                     build_doceph_cluster])
def test_tracked_write_records_pipeline_stages(builder):
    env = Environment()
    c = builder(env)
    boot = env.process(c.boot())
    env.run(until=boot)
    trackers = [osd.enable_op_tracking() for osd in c.osds]

    def work():
        for i in range(4):
            yield from c.client.write_object(BENCH_POOL, f"t-{i}", 2 << 20)

    p = env.process(work())
    env.run(until=p)

    historic = [op for t in trackers for op in t.dump_historic()]
    assert len(historic) == 4
    for op in historic:
        stages = [s for _, s in op.events]
        assert stages[0] == "initiated"
        assert "queued_for_pg" in stages
        assert "reached_pg" in stages
        assert "sub_op_sent" in stages  # replication 2
        assert "commit_received" in stages
        # timestamps are monotone
        times = [t for t, _ in op.events]
        assert times == sorted(times)
        assert op.duration is not None and op.duration > 0
        # the sum of stage durations equals the total
        total = sum(d for _, d in op.stage_durations())
        assert total == pytest.approx(op.duration)


def test_untracked_by_default():
    env = Environment()
    c = build_baseline_cluster(env)
    boot = env.process(c.boot())
    env.run(until=boot)

    def work():
        yield from c.client.write_object(BENCH_POOL, "x", 1 << 20)

    p = env.process(work())
    env.run(until=p)
    for osd in c.osds:
        assert osd.tracker is None
