"""Tests for repro.perf: golden-digest behavior invariance, the
benchmark harness itself, hook-overhead measurement, and the blob-id
fresh-environment reset.

The golden digests below were captured on the unoptimized engine
(before the hot-path rework); every kernel or model optimization must
reproduce them byte-for-byte.  If a digest test fails, the engine's
*behavior* changed — event count, ordering, or timestamps — and the
change must be reverted or re-derived, never "re-goldened" as part of
a performance PR.
"""

import json

import pytest

from repro.perf import (
    SCENARIOS,
    measure,
    measure_hook_overhead,
    perf_result_dict,
    run_scenario,
)
from repro.sim import Environment
from repro.trace import Tracer, simulation_digest
from repro.util.bufferlist import DataBlob

# (scenario, seed) -> captured on the pre-optimization engine.
GOLDEN = {
    ("smoke", 0): {
        "digest": "e2ef72a6badf5c73ebdfb994c2ce1e56502d36587e1393cdb6e0f6812dba5fec",
        "events": 119403, "sim_s": 3.017881747, "completed_ops": 238,
    },
    ("smoke", 1): {
        "digest": "e2ef72a6badf5c73ebdfb994c2ce1e56502d36587e1393cdb6e0f6812dba5fec",
        "events": 119403, "sim_s": 3.017881747, "completed_ops": 238,
    },
    ("smoke", 2): {
        "digest": "e2ef72a6badf5c73ebdfb994c2ce1e56502d36587e1393cdb6e0f6812dba5fec",
        "events": 119403, "sim_s": 3.017881747, "completed_ops": 238,
    },
    ("fallback", 0): {
        "digest": "c560aca9574bb8a335c21856890e7dc6aae3288ca248d0d216a055dfa25b2592",
        "events": 281328, "sim_s": 5.055724046, "completed_ops": 348,
    },
    ("fallback", 1): {
        "digest": "db72cd5c6f339fba27de5863715f252928137db4332801de2cf1db8a0610fcd3",
        "events": 282814, "sim_s": 5.070320017, "completed_ops": 350,
    },
    ("fallback", 2): {
        "digest": "cc3710b8be4288877a3d3081ab11e7ccebb54843d4dabf6b4b7de78576fd7d21",
        "events": 284211, "sim_s": 5.060342479, "completed_ops": 354,
    },
    ("baseline", 0): {
        "digest": "ddf6e2715324c0b3859a751909ab8e53aba9b5b8941d57fae43e703d654c29c3",
        "events": 244984, "sim_s": 5.058659605, "completed_ops": 471,
    },
    ("doceph", 0): {
        "digest": "baa744a014860e3ff1abc1adb598f1051f7876cd9b7973642115e10149d6d0e3",
        "events": 271215, "sim_s": 5.071834561, "completed_ops": 417,
    },
    ("qos", 0): {
        "digest": "378bba53e1dd16ffdd7e66660e745a87408b9329d50dd0d016668649e82becbb",
        "events": 256000, "sim_s": 3.725188211, "completed_ops": 834,
    },
}

# smoke scenario with Tracer(seed=seed) attached; fingerprints cover
# the full span tree, so the tracer's zero-perturbation guarantee and
# the span structure are both pinned.
GOLDEN_TRACED = {
    0: "a70e5fd5c693a89f56af9e5cdbf69fe1f831f7d655e4fb13c28fa84e5c9efa7e",
    1: "d2d84c87d641ab926504dadd44cd5fb7880533fac4b1d39808597aa9d405532c",
    2: "ad4e3e350106dd09fda5e8a87b7b460330d61b13fb0dcd6d2ffd7b83d667ef24",
}


# ------------------------------------------------------------- golden digests

@pytest.mark.parametrize("scenario,seed", sorted(GOLDEN))
def test_golden_digest(scenario, seed):
    env, result = run_scenario(scenario, seed=seed)
    want = GOLDEN[(scenario, seed)]
    assert simulation_digest(env) == want["digest"]
    assert env._seq == want["events"]
    assert round(env.now, 9) == want["sim_s"]
    assert result.completed_ops == want["completed_ops"]


@pytest.mark.parametrize("seed", sorted(GOLDEN_TRACED))
def test_golden_traced_fingerprint(seed):
    tracer = Tracer(seed=seed)
    env, _ = run_scenario("smoke", seed=seed, tracer=tracer)
    # attaching the tracer must not perturb the simulation...
    assert simulation_digest(env) == GOLDEN[("smoke", seed)]["digest"]
    # ...and the span tree itself is deterministic per tracer seed
    assert tracer.report().fingerprint() == GOLDEN_TRACED[seed]


def test_detached_fault_plan_is_inert():
    """A never-firing plan (p=0) must be event-for-event identical to a
    fully detached run — the guard hoisting the optimization relies on."""
    overhead = measure_hook_overhead("smoke", seed=0, repeats=1)
    assert overhead.digests_equal
    assert overhead.detached_wall_s > 0
    assert overhead.noop_wall_s > 0


# ------------------------------------------------------------------- harness

def test_measure_matches_golden_and_self_checks():
    res = measure("smoke", seed=0, repeats=2)
    assert res.digest == GOLDEN[("smoke", 0)]["digest"]
    assert res.events == GOLDEN[("smoke", 0)]["events"]
    assert res.repeats == 2
    assert res.wall_s > 0
    assert res.events_per_sec > 0
    assert res.wall_per_sim_s > 0
    assert res.peak_heap > 0
    assert res.subsystems is None  # no profile requested


def test_measure_profile_breakdown():
    res = measure("smoke", seed=0, repeats=1, profile=True)
    assert res.digest == GOLDEN[("smoke", 0)]["digest"]
    assert res.subsystems, "profiling must yield a subsystem breakdown"
    # the kernel and the model layers must both appear
    assert "sim" in res.subsystems
    shares = [agg.get("share", 0.0) for agg in res.subsystems.values()]
    assert 0.99 < sum(shares) < 1.01
    assert res.hot, "profiling must yield hottest-function rows"


def test_measure_rejects_bad_args():
    with pytest.raises(ValueError):
        measure("smoke", repeats=0)
    with pytest.raises(ValueError):
        run_scenario("no-such-scenario")


def test_perf_result_dict_round_trips():
    res = measure("smoke", seed=0, repeats=1)
    doc = perf_result_dict(res)
    json.dumps(doc)  # serializable
    assert doc["scenario"] == "smoke"
    assert doc["digest"] == res.digest
    assert doc["events"] == res.events
    assert doc["peak_heap"] == res.peak_heap
    assert "trace_fingerprint" not in doc  # no tracer attached
    assert "subsystems" not in doc  # no profile requested


def test_scenarios_are_well_formed():
    assert {"smoke", "fallback", "baseline", "doceph", "qos"} <= set(SCENARIOS)
    for name, sc in SCENARIOS.items():
        assert sc.name == name
        assert sc.mode in ("baseline", "doceph", "qos")
        assert sc.object_size > 0 and sc.clients > 0 and sc.duration > 0


def test_qos_scenario_rejects_fault_plans():
    from repro.faults import FaultPlan

    with pytest.raises(ValueError):
        run_scenario("qos", seed=0, fault_plan=FaultPlan.parse("dma,p=0"))


# ------------------------------------------------------------------ perf CLI

def test_cli_perf_runs_and_writes_json(capsys, tmp_path):
    from repro.cli import main

    code = main(["perf", "--scenario", "smoke", "--repeats", "1",
                 "--json-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "events/s" in out
    assert GOLDEN[("smoke", 0)]["digest"] in out
    doc = json.loads((tmp_path / "BENCH_perf_smoke.json").read_text())
    assert doc["digest"] == GOLDEN[("smoke", 0)]["digest"]
    assert doc["events"] == GOLDEN[("smoke", 0)]["events"]


def test_cli_perf_baseline_digest_mismatch_exits_3(capsys, tmp_path):
    from repro.cli import main

    base = tmp_path / "base.json"
    base.write_text(json.dumps({"digest": "not-the-digest",
                                "wall_s": 100.0}))
    code = main(["perf", "--scenario", "smoke", "--repeats", "1",
                 "--baseline", str(base), "--no-json"])
    assert code == 3
    assert "MISMATCH" in capsys.readouterr().out


def test_cli_perf_baseline_regression_exits_4(capsys, tmp_path):
    from repro.cli import main

    base = tmp_path / "base.json"
    base.write_text(json.dumps({
        "digest": GOLDEN[("smoke", 0)]["digest"],
        "wall_s": 1e-6,  # impossibly fast baseline forces a regression
    }))
    code = main(["perf", "--scenario", "smoke", "--repeats", "1",
                 "--baseline", str(base), "--no-json"])
    assert code == 4
    assert "REGRESSION" in capsys.readouterr().out


# -------------------------------------------------- blob-id fresh-env reset

def test_blob_ids_reset_per_environment():
    """The bufferlist blob-id mint must restart for every simulation:
    a leaked module-global counter made blob ids depend on how many
    simulations the process had already run."""
    Environment()
    first_run_id = DataBlob(16).blob_id

    # burn some ids, then start a fresh simulation
    for _ in range(5):
        DataBlob(8)
    Environment()

    assert DataBlob(16).blob_id == first_run_id
