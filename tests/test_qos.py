"""Tests for repro.qos: mClock queue properties, admission control,
open-loop determinism, the payload schema, and the fuzz-layer hooks.

The property tests drive the mClock band of the op queue directly — a
deterministic arrival schedule against a fixed-capacity consumer — so
the reservation/weight/limit invariants are checked at the layer that
enforces them, independent of messaging bottlenecks upstream.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.schema import validate_payload
from repro.cluster.strategy import STRATEGY_NAMES, get_strategy
from repro.osd.opqueue import QosSpec, WeightedPriorityQueue, CLIENT_OP
from repro.qos import (
    AdmissionController,
    TenantSpec,
    default_tenants,
    qos_payload,
    run_qos,
)
from repro.sim import Environment

KB = 1024


# --------------------------------------------------------------- harness
def serve_queue(specs, rates, capacity, duration, seed=0):
    """Drive the mClock band: uniform-spaced arrivals per tenant vs a
    consumer of fixed ``capacity`` ops/sec.  Returns per-tenant served
    counts over ``duration`` simulated seconds."""
    env = Environment()
    q = WeightedPriorityQueue(env, seed=seed)
    for name, spec in specs.items():
        q.set_tenant(name, spec)
    served = {name: 0 for name in specs}

    arrivals = sorted(
        (i / rate, name)
        for name, rate in rates.items()
        for i in range(int(rate * duration))
    )

    def producer():
        for t, name in arrivals:
            if t > env.now:
                yield env.timeout(t - env.now)
            q.enqueue(name, tenant=name)

    def consumer():
        for _ in range(int(capacity * duration)):
            name = yield q.dequeue()
            if env.now >= duration:
                return
            served[name] += 1
            yield env.timeout(1.0 / capacity)

    p1 = env.process(producer(), name="qos-producer")
    p2 = env.process(consumer(), name="qos-consumer")
    env.run(until=p1)
    env.run(until=p2)
    return served


# ------------------------------------------------- mClock properties
@given(
    reservations=st.lists(
        st.floats(min_value=5.0, max_value=25.0), min_size=2, max_size=4
    )
)
@settings(max_examples=15, deadline=None)
def test_reservation_floor_under_saturation(reservations):
    """Every tenant achieves >= ~its reserved rate even when aggregate
    offered load is 2x capacity (sum of reservations <= 80% capacity)."""
    capacity, duration = 100.0, 5.0
    specs = {
        f"t{i}": QosSpec(reservation=r, weight=1.0)
        for i, r in enumerate(reservations)
    }
    rates = {name: 2.0 * capacity / len(specs) for name in specs}
    served = serve_queue(specs, rates, capacity, duration)
    for i, r in enumerate(reservations):
        floor = r * duration
        assert served[f"t{i}"] >= 0.9 * floor, (
            f"t{i} served {served[f't{i}']} < 90% of floor {floor}"
        )


@given(
    weights=st.lists(
        st.floats(min_value=1.0, max_value=8.0), min_size=2, max_size=4
    )
)
@settings(max_examples=15, deadline=None)
def test_weight_proportional_spare(weights):
    """With no reservations, saturated tenants split capacity in
    proportion to their weights."""
    capacity, duration = 100.0, 5.0
    specs = {
        f"t{i}": QosSpec(weight=w) for i, w in enumerate(weights)
    }
    # Every tenant individually offers 1.5x total capacity, so no
    # tenant is demand-limited below its proportional share (a tenant
    # offered less than its share legitimately donates the spare).
    rates = {name: 1.5 * capacity for name in specs}
    served = serve_queue(specs, rates, capacity, duration)
    total_w = sum(weights)
    total_served = sum(served.values())
    for i, w in enumerate(weights):
        expected = total_served * w / total_w
        assert abs(served[f"t{i}"] - expected) <= 0.15 * expected + 2, (
            f"t{i} (weight {w}) served {served[f't{i}']}, "
            f"expected ~{expected:.0f}"
        )


@given(limit=st.floats(min_value=15.0, max_value=40.0))
@settings(max_examples=15, deadline=None)
def test_limit_caps_bursty_tenant(limit):
    """A limited tenant never exceeds its cap even with spare capacity,
    while still receiving its reservation floor."""
    capacity, duration = 200.0, 5.0
    specs = {
        "capped": QosSpec(reservation=10.0, weight=4.0, limit=limit),
        "open": QosSpec(weight=1.0),
    }
    rates = {"capped": 100.0, "open": 300.0}
    served = serve_queue(specs, rates, capacity, duration)
    cap = limit * duration
    assert served["capped"] <= cap * 1.02 + 1, (
        f"capped served {served['capped']} > cap {cap}"
    )
    assert served["capped"] >= 0.9 * 10.0 * duration


def test_untagged_band_unaffected_by_tenant_config():
    """Installing tenant specs without tagging any op leaves the classic
    WPQ dequeue order byte-identical (the golden-digest guarantee)."""

    def drain(configure):
        env = Environment()
        q = WeightedPriorityQueue(env, seed=11)
        if configure:
            q.set_tenant("tx", QosSpec(reservation=50.0, limit=100.0))
        for i in range(40):
            q.enqueue(("c", i), CLIENT_OP)
            q.enqueue(("r", i), 5)
        out = []

        def consumer():
            for _ in range(80):
                out.append((yield q.dequeue()))

        p = env.process(consumer())
        env.run(until=p)
        return out

    assert drain(False) == drain(True)


# ------------------------------------------------- admission control
def test_admission_window_sheds_and_releases():
    adm = AdmissionController()
    adm.set_window("a", 2)
    assert adm.try_acquire("a") and adm.try_acquire("a")
    assert not adm.try_acquire("a")  # window full -> shed
    assert adm.total_shed() == 1
    adm.release("a")
    assert adm.try_acquire("a")
    assert adm.inflight("a") == 2


def test_admission_unmetered_tenant_never_sheds():
    adm = AdmissionController()
    for _ in range(100):
        assert adm.try_acquire("ghost")
    assert adm.total_shed() == 0


def test_admission_release_without_acquire_raises():
    adm = AdmissionController()
    adm.set_window("a", 1)
    with pytest.raises(RuntimeError):
        adm.release("a")


# ------------------------------------------------- specs and defaults
def test_tenant_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec(name="x", rate=0.0)
    with pytest.raises(ValueError):
        TenantSpec(name="x", rate=10.0, arrival="thundering-herd")
    with pytest.raises(ValueError):
        QosSpec(reservation=10.0, limit=5.0)  # limit below reservation


def test_default_tenants_shape():
    specs = default_tenants(8, reservation=25.0, rate=250.0)
    assert len(specs) == 8
    assert len({s.name for s in specs}) == 8
    assert any(s.arrival == "bursty" for s in specs)
    assert specs[-1].qos.limit == pytest.approx(50.0)
    assert sorted({s.qos.weight for s in specs}) == [1.0, 2.0, 3.0, 4.0]


def test_strategy_registry():
    assert set(STRATEGY_NAMES) == {
        "baseline", "tcp-only", "full-osd", "zero-copy"
    }
    for name in STRATEGY_NAMES:
        assert get_strategy(name).name == name
    with pytest.raises(KeyError):
        get_strategy("quantum")


# ------------------------------------------------- full-run behaviour
@pytest.fixture(scope="module")
def small_run():
    tenants = default_tenants(
        4, reservation=10.0, rate=60.0, object_size=16 * KB, window=16
    )
    return tenants, run_qos(
        "full-osd", tenants, seed=3, duration=3.0, prepopulate=8
    )


def test_run_qos_two_runs_identical_fingerprint(small_run):
    tenants, first = small_run
    second = run_qos("full-osd", tenants, seed=3, duration=3.0,
                     prepopulate=8)
    assert first.fingerprint == second.fingerprint
    assert first.fingerprint


def test_run_qos_overload_sheds_and_counts(small_run):
    _, result = small_run
    assert result.overload_factor > 1.0
    assert sum(st_.shed for st_ in result.tenants) > 0
    assert result.queue_stats["tagged_enqueued"] > 0
    offered = sum(st_.offered for st_ in result.tenants)
    accounted = sum(
        st_.completed + st_.completed_late + st_.shed + st_.failed
        for st_ in result.tenants
    )
    assert accounted == offered


def test_run_qos_rejects_bad_input():
    with pytest.raises(ValueError):
        run_qos("full-osd", [], duration=1.0)
    dup = [TenantSpec(name="t", rate=10.0), TenantSpec(name="t", rate=5.0)]
    with pytest.raises(ValueError):
        run_qos("full-osd", dup, duration=1.0)
    with pytest.raises(KeyError):
        run_qos("warp-drive", duration=1.0)


def test_qos_payload_passes_bench_schema(small_run):
    _, result = small_run
    payload = qos_payload(result)
    assert validate_payload(payload) >= 1  # aggregate block validated
    assert payload["fingerprint"] == result.fingerprint
    tenants = payload["qos"]["tenants"]
    assert len(tenants) == 4
    for t in tenants:
        assert set(t["latency_s"]) == {"mean", "p50", "p90", "p99", "max"}


# ------------------------------------------------- fuzz-layer hooks
def test_scenario_v1_text_parses_with_zero_tenants():
    from repro.fuzz.scenario import scenario_from_text

    v1 = (
        "# repro.fuzz scenario v1\n"
        "mode=baseline\nclients=1\nsize=1048576\nduration=1.0\n"
        "think=0.1\ncrashes=1\npartitions=0\n"
        "chaos_seed=17\nfault_seed=3\nfaults=\n"
    )
    s = scenario_from_text(v1)
    assert s.tenants == 0
    assert s.crashes == 1


def test_scenario_v2_roundtrip_carries_tenants():
    from repro.fuzz.scenario import (
        Scenario,
        scenario_from_text,
        scenario_to_text,
    )

    s = Scenario(clients=2, tenants=2, duration=1.0)
    assert "tenants=2" in scenario_to_text(s)
    assert scenario_from_text(scenario_to_text(s)) == s
    with pytest.raises(ValueError):
        Scenario(tenants=-1)


def test_multitenant_scenario_emits_qos_coverage():
    from repro.fuzz.executor import execute_scenario
    from repro.fuzz.scenario import Scenario

    out = execute_scenario(
        Scenario(clients=2, tenants=1, duration=1.0, think_time=0.05)
    )
    assert not out.violations
    assert "qos.ops_shed" in out.coverage
    assert "qos.tagged_enqueued" in out.coverage

    plain = execute_scenario(
        Scenario(clients=2, tenants=0, duration=1.0, think_time=0.05)
    )
    assert not any(k.startswith("qos.") for k in plain.coverage)
