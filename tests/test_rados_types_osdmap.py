"""Tests for RADOS types, object→PG mapping, and the OSDMap."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crush import CrushMap
from repro.rados import (
    OsdMap,
    OsdState,
    PgId,
    Pool,
    ceph_stable_mod,
    object_to_pg,
    pg_to_crush_input,
)


def make_osdmap(nodes=4, pg_num=64, size=2):
    cmap = CrushMap()
    cmap.add_bucket("default", "root")
    for i in range(nodes):
        cmap.add_bucket(f"host{i}", "host")
        cmap.add_device(f"host{i}", i)
        cmap.link_bucket("default", f"host{i}")
    cmap.add_rule(CrushMap.replicated_rule())
    osdmap = OsdMap(crush=cmap)
    osdmap.create_pool(Pool(id=1, name="bench", pg_num=pg_num, size=size))
    for i in range(nodes):
        osdmap.add_osd(i, address=f"node{i}")
    return osdmap


# ---------------------------------------------------------------- types


def test_stable_mod_within_range():
    for x in range(0, 1000, 7):
        assert 0 <= ceph_stable_mod(x, 12, 15) < 12


def test_stable_mod_is_plain_mask_for_pow2():
    assert ceph_stable_mod(0xABCDEF, 16, 15) == 0xABCDEF & 15


def test_stable_mod_rejects_bad_pgnum():
    with pytest.raises(ValueError):
        ceph_stable_mod(5, 0, 0)


def test_stable_mod_stability_under_growth():
    """Growing pg_num toward the next power of two only remaps objects
    whose seed falls in the newly-unfolded range."""
    b_old, b_new = 12, 16
    mask = 15
    for x in range(5000):
        old = ceph_stable_mod(x, b_old, mask)
        new = ceph_stable_mod(x, b_new, mask)
        if old != new:
            assert new >= b_old  # only folded seeds unfold


def test_pool_validation():
    with pytest.raises(ValueError):
        Pool(id=1, name="p", pg_num=0)
    with pytest.raises(ValueError):
        Pool(id=1, name="p", size=2, min_size=3)


def test_object_to_pg_deterministic_and_in_range():
    pool = Pool(id=3, name="p", pg_num=100)
    seen = set()
    for i in range(1000):
        pgid = object_to_pg(pool, f"obj-{i}")
        assert pgid == object_to_pg(pool, f"obj-{i}")
        assert pgid.pool == 3
        assert 0 <= pgid.seed < 100
        seen.add(pgid.seed)
    # 1000 objects over 100 PGs should touch most PGs
    assert len(seen) > 90


def test_pg_distribution_roughly_uniform():
    pool = Pool(id=1, name="p", pg_num=32)
    counts = collections.Counter(
        object_to_pg(pool, f"bench_{i}").seed for i in range(16_000)
    )
    mean = 16_000 / 32
    for c in counts.values():
        assert abs(c - mean) / mean < 0.3


def test_pgid_string():
    assert str(PgId(2, 0x1A)) == "2.1a"


@given(st.text(min_size=1, max_size=30))
@settings(max_examples=200)
def test_object_to_pg_property(name):
    pool = Pool(id=1, name="p", pg_num=48)
    pgid = object_to_pg(pool, name)
    assert 0 <= pgid.seed < 48
    assert pg_to_crush_input(pgid) == pg_to_crush_input(pgid)


# ---------------------------------------------------------------- osdmap


def test_osdmap_epoch_bumps_on_mutation():
    osdmap = make_osdmap()
    e0 = osdmap.epoch
    osdmap.mark_down(0)
    assert osdmap.epoch == e0 + 1
    osdmap.mark_down(0)  # idempotent
    assert osdmap.epoch == e0 + 1
    osdmap.mark_out(0)
    assert osdmap.epoch == e0 + 2
    osdmap.mark_up(0)
    assert osdmap.epoch == e0 + 3


def test_osdmap_duplicate_and_unknown():
    osdmap = make_osdmap()
    with pytest.raises(ValueError):
        osdmap.add_osd(0, "x")
    with pytest.raises(ValueError):
        osdmap.mark_down(99)
    with pytest.raises(ValueError):
        osdmap.create_pool(Pool(id=1, name="other"))
    with pytest.raises(ValueError):
        osdmap.create_pool(Pool(id=9, name="bench"))
    with pytest.raises(ValueError):
        osdmap.pool_by_name("nope")


def test_pg_to_osds_and_primary():
    osdmap = make_osdmap()
    for pgid in osdmap.all_pgs("bench"):
        acting = osdmap.pg_to_osds(pgid)
        assert len(acting) == 2
        assert osdmap.pg_primary(pgid) == acting[0]


def test_down_osd_excluded_from_acting_but_not_remapped():
    """DOWN+IN: the OSD drops out of acting sets (degraded) but CRUSH
    does not remap data to new devices yet."""
    osdmap = make_osdmap()
    pgs_with_0 = [
        pgid for pgid in osdmap.all_pgs("bench")
        if 0 in osdmap.pg_to_osds(pgid)
    ]
    assert pgs_with_0
    osdmap.mark_down(0)
    for pgid in pgs_with_0:
        acting = osdmap.pg_to_osds(pgid)
        assert 0 not in acting
        assert len(acting) == 1  # degraded, not yet backfilled


def test_out_osd_triggers_remap():
    """DOWN+OUT: CRUSH remaps the PGs to the surviving devices."""
    osdmap = make_osdmap()
    osdmap.mark_out(0)
    for pgid in osdmap.all_pgs("bench"):
        acting = osdmap.pg_to_osds(pgid)
        assert 0 not in acting
        assert len(acting) == 2  # fully replicated again


def test_mark_up_restores_placement():
    osdmap = make_osdmap()
    before = {pgid: osdmap.pg_to_osds(pgid)
              for pgid in osdmap.all_pgs("bench")}
    osdmap.mark_out(0)
    osdmap.mark_up(0, address="node0-new")
    after = {pgid: osdmap.pg_to_osds(pgid)
             for pgid in osdmap.all_pgs("bench")}
    assert before == after
    assert osdmap.address_of(0) == "node0-new"


def test_address_lookup():
    osdmap = make_osdmap()
    assert osdmap.address_of(2) == "node2"


def test_primary_raises_when_no_acting_set():
    osdmap = make_osdmap(nodes=2)
    osdmap.mark_down(0)
    osdmap.mark_down(1)
    pgid = osdmap.all_pgs("bench")[0]
    with pytest.raises(ValueError):
        osdmap.pg_primary(pgid)


def test_object_to_pg_via_map():
    osdmap = make_osdmap()
    pgid = osdmap.object_to_pg("bench", "obj")
    assert pgid.pool == 1
