"""Integration tests for PG recovery and light scrubbing."""

import pytest

from repro.cluster import (
    BENCH_POOL,
    DocephProfile,
    HardwareProfile,
    build_baseline_cluster,
    build_doceph_cluster,
)
from repro.sim import Environment


def boot_cluster(builder, profile):
    env = Environment()
    c = builder(env, profile)
    b = env.process(c.boot())
    env.run(until=b)
    return env, c


def write_objects(env, c, names, size=1 << 20):
    def work():
        for name in names:
            yield from c.client.write_object(BENCH_POOL, name, size)

    p = env.process(work())
    env.run(until=p)


def objects_on_store(store):
    return {
        name
        for objects in store.collections.values()
        for name in objects
    }


def test_recovery_restores_replication_after_failure():
    profile = HardwareProfile(storage_nodes=3, pg_num=16)
    env, c = boot_cluster(build_baseline_cluster, profile)
    names = [f"obj-{i}" for i in range(12)]
    write_objects(env, c, names)

    # every object has exactly 2 copies
    copies_before = sum(
        name in objects_on_store(store) for store in c.stores
        for name in names
    )
    assert copies_before == 2 * len(names)

    # osd.0 dies and is marked out — its PGs remap to survivors
    c.osdmap.mark_out(0)

    # let recovery run (ticks every 1 s; pushes are windowed)
    env.run(until=env.now + 30.0)

    # every object again has 2 copies, none of them on osd.0's store
    for name in names:
        holders = [
            i for i, store in enumerate(c.stores)
            if name in objects_on_store(store)
        ]
        live_holders = [h for h in holders if h != 0]
        assert len(live_holders) == 2, f"{name} held by {holders}"

    total_recovered = sum(
        o.recovery.objects_recovered for o in c.osds if o.recovery
    )
    assert total_recovered > 0


def test_recovery_noop_on_healthy_cluster():
    profile = HardwareProfile(storage_nodes=2, pg_num=16)
    env, c = boot_cluster(build_baseline_cluster, profile)
    write_objects(env, c, ["a", "b"])
    env.run(until=env.now + 10.0)
    for osd in c.osds:
        assert osd.recovery.pulls_sent == 0
        assert osd.recovery.objects_recovered == 0


def test_recovery_refuses_credit_on_incomplete_push_manifest():
    """The 'last' marker names every object its stream pushed; a puller
    that never received one of them (the wire layer consumed the data
    frame while the marker survived) must abort the episode for re-pull
    instead of crediting itself a full copy with a hole in it."""
    profile = HardwareProfile(storage_nodes=3, pg_num=4)
    env, c = boot_cluster(build_baseline_cluster, profile)
    write_objects(env, c, ["obj-a"])
    osd = c.osds[0]
    rec = osd.recovery
    pgid = next(iter(osd.osdmap.all_pgs(BENCH_POOL)))
    addr = c.osds[1].messenger.address
    before = rec.pulls_retried

    # stream delivered obj-a but the manifest says obj-b was sent too
    rec._pull_pending[pgid] = {addr: (1, True, 5)}
    rec._recv_names[pgid] = {addr: {"obj-a"}}
    rec._complete_source(pgid, addr, skipped=(), pushed=("obj-a", "obj-b"))
    assert pgid not in rec._pull_pending
    assert rec.pulls_retried == before + 1
    assert not rec._pulled_full.get(pgid, False)

    # the same episode with a fully-received manifest completes normally
    rec._pull_pending[pgid] = {addr: (1, True, 5)}
    rec._recv_names[pgid] = {addr: {"obj-a", "obj-b"}}
    rec._complete_source(pgid, addr, skipped=(), pushed=("obj-a", "obj-b"))
    assert pgid not in rec._pull_pending
    assert rec.pulls_retried == before + 1


def test_recovery_on_doceph_cluster_uses_dpu():
    """Recovery traffic flows through the DPU messenger and the proxy
    (host CPU stays out of the data path)."""
    profile = DocephProfile(storage_nodes=3, pg_num=16)
    env, c = boot_cluster(build_doceph_cluster, profile)
    names = [f"obj-{i}" for i in range(8)]
    write_objects(env, c, names, size=2 << 20)
    c.osdmap.mark_out(0)
    env.run(until=env.now + 40.0)

    total_recovered = sum(
        o.recovery.objects_recovered for o in c.osds if o.recovery
    )
    assert total_recovered > 0
    # all recovered copies are durable in host BlueStores of survivors
    for name in names:
        live = sum(
            name in objects_on_store(store)
            for i, store in enumerate(c.stores) if i != 0
        )
        assert live == 2
    # host CPUs never ran messenger work, even during recovery
    for node in c.nodes:
        assert "msgr-worker" not in node.host_cpu.accounting.busy_by_category


def test_client_writes_progress_during_recovery():
    profile = HardwareProfile(storage_nodes=3, pg_num=16)
    env, c = boot_cluster(build_baseline_cluster, profile)
    write_objects(env, c, [f"pre-{i}" for i in range(8)], size=4 << 20)
    c.osdmap.mark_out(0)

    results = []

    def writer():
        for i in range(10):
            r = yield from c.client.write_object(BENCH_POOL, f"live-{i}",
                                                 1 << 20)
            results.append(r.result)

    p = env.process(writer())
    env.run(until=p)
    assert results == [0] * 10


# ---------------------------------------------------------------- scrub


def test_scrub_clean_cluster_reports_no_inconsistencies():
    profile = HardwareProfile(storage_nodes=2, pg_num=8, scrub_interval=2.0)
    env, c = boot_cluster(build_baseline_cluster, profile)
    write_objects(env, c, [f"s-{i}" for i in range(10)])
    env.run(until=env.now + 30.0)
    scrubs = sum(o.scrub.scrubs_completed for o in c.osds if o.scrub)
    assert scrubs > 0
    assert all(o.scrub.inconsistencies == 0 for o in c.osds if o.scrub)
    assert sum(o.scrub.objects_scrubbed for o in c.osds if o.scrub) > 0


def test_scrub_detects_divergent_replica():
    profile = HardwareProfile(storage_nodes=2, pg_num=8, scrub_interval=2.0)
    env, c = boot_cluster(build_baseline_cluster, profile)
    write_objects(env, c, [f"s-{i}" for i in range(10)])

    # corrupt one replica: silently bump an object's version on store 1
    store = c.stores[1]
    victim = None
    for objects in store.collections.values():
        for name, onode in objects.items():
            victim = onode
            break
        if victim:
            break
    assert victim is not None
    victim.version += 17

    env.run(until=env.now + 60.0)
    total_inconsistencies = sum(
        o.scrub.inconsistencies for o in c.osds if o.scrub
    )
    assert total_inconsistencies >= 1


def test_scrub_over_doceph_control_plane():
    """Scrub stats/lists flow through the proxy RPC channel on DoCeph."""
    profile = DocephProfile(storage_nodes=2, pg_num=8, scrub_interval=2.0)
    env, c = boot_cluster(build_doceph_cluster, profile)
    write_objects(env, c, [f"s-{i}" for i in range(6)])
    control_before = sum(s.control_ops for s in c.proxy_servers)
    env.run(until=env.now + 20.0)
    control_after = sum(s.control_ops for s in c.proxy_servers)
    scrubs = sum(o.scrub.scrubs_completed for o in c.osds if o.scrub)
    assert scrubs > 0
    # scrub's stat/list traffic shows up as proxy control-plane ops
    assert control_after > control_before
