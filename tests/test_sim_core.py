"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=10.0)
    assert env.now == 10.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        v = yield env.timeout(1, value="hello")
        return v

    p = env.process(proc(env))
    env.run()
    assert p.value == "hello"


def test_run_until_time():
    env = Environment()
    log = []

    def ticker(env):
        while True:
            yield env.timeout(1)
            log.append(env.now)

    env.process(ticker(env))
    env.run(until=3.5)
    assert log == [1, 2, 3]
    assert env.now == 3.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return 42

    p = env.process(proc(env))
    assert env.run(until=p) == 42


def test_run_until_past_raises():
    env = Environment(initial_time=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_processes_interleave_deterministically():
    env = Environment()
    log = []

    def worker(env, name, period):
        while env.now < 6:
            yield env.timeout(period)
            log.append((env.now, name))

    env.process(worker(env, "a", 2))
    env.process(worker(env, "b", 3))
    env.run(until=7)
    # At t=6 both fire; "b" scheduled its timeout first (at t=3, vs t=4
    # for "a"), so scheduling order puts it first.
    assert log == [(2, "a"), (3, "b"), (4, "a"), (6, "b"), (6, "a")]


def test_same_time_fifo_ordering():
    """Events at the same timestamp are processed in scheduling order."""
    env = Environment()
    log = []

    def proc(env, name):
        yield env.timeout(1)
        log.append(name)

    for name in "abcde":
        env.process(proc(env, name))
    env.run()
    assert log == list("abcde")


def test_event_succeed_and_value():
    env = Environment()
    ev = env.event()
    assert not ev.triggered
    ev.succeed(7)
    assert ev.triggered
    assert ev.value == 7


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_process_waits_for_event():
    env = Environment()
    ev = env.event()

    def waiter(env):
        v = yield ev
        return v

    def firer(env):
        yield env.timeout(3)
        ev.succeed("done")

    w = env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert w.value == "done"


def test_failed_event_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter(env):
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught {exc}"

    def firer(env):
        yield env.timeout(1)
        ev.fail(RuntimeError("boom"))

    w = env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert w.value == "caught boom"


def test_unhandled_process_failure_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("model bug")

    env.process(bad(env))
    with pytest.raises(ValueError, match="model bug"):
        env.run()


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_process_return_value_via_yield():
    env = Environment()

    def child(env):
        yield env.timeout(2)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return result

    p = env.process(parent(env))
    env.run()
    assert p.value == "child-result"


def test_interrupt_delivery():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100)
            return "slept"
        except Interrupt as intr:
            return ("interrupted", intr.cause, env.now)

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == ("interrupted", "wake up", 5)


def test_interrupt_self_rejected():
    env = Environment()

    def proc(env):
        env.active_process.interrupt()
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env, d):
        yield env.timeout(d)
        return d

    def waiter(env):
        a = env.process(proc(env, 2))
        b = env.process(proc(env, 5))
        results = yield AllOf(env, [a, b])
        return (env.now, list(results.values()))

    w = env.process(waiter(env))
    env.run()
    assert w.value == (5, [2, 5])


def test_any_of_waits_for_first():
    env = Environment()

    def proc(env, d):
        yield env.timeout(d)
        return d

    def waiter(env):
        a = env.process(proc(env, 2))
        b = env.process(proc(env, 5))
        yield AnyOf(env, [a, b])
        return env.now

    w = env.process(waiter(env))
    env.run()
    assert w.value == 2


def test_and_or_operators():
    env = Environment()

    def waiter(env):
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(3, value="y")
        yield t1 & t2
        first = env.now
        t3 = env.timeout(1)
        t4 = env.timeout(10)
        yield t3 | t4
        return (first, env.now)

    w = env.process(waiter(env))
    env.run()
    assert w.value == (3, 4)


def test_empty_all_of_triggers_immediately():
    env = Environment()

    def waiter(env):
        yield AllOf(env, [])
        return env.now

    w = env.process(waiter(env))
    env.run()
    assert w.value == 0


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")


def test_step_without_events_raises():
    env = Environment()
    with pytest.raises(IndexError):
        env.step()


def test_process_is_alive_and_repr():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env), name="myproc")
    assert p.is_alive
    assert "myproc" in repr(p)
    env.run()
    assert not p.is_alive


def test_run_until_drained_advances_to_until():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    env.process(quick(env))
    env.run(until=100)
    assert env.now == 100
