"""Edge-case tests for the DES kernel: failure propagation through
conditions, trigger helpers, pre-triggered events, defused errors."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, SimulationError


def test_condition_propagates_child_failure():
    env = Environment()

    def failer(env):
        yield env.timeout(1)
        raise RuntimeError("child died")

    def waiter(env):
        p = env.process(failer(env))
        t = env.timeout(10)
        try:
            yield AllOf(env, [p, t])
        except RuntimeError as exc:
            return f"caught: {exc}"

    w = env.process(waiter(env))
    env.run()
    assert w.value == "caught: child died"


def test_any_of_with_failure_first():
    env = Environment()

    def failer(env):
        yield env.timeout(1)
        raise ValueError("boom")

    def waiter(env):
        p = env.process(failer(env))
        t = env.timeout(5)
        try:
            yield AnyOf(env, [p, t])
        except ValueError:
            return env.now

    w = env.process(waiter(env))
    env.run()
    assert w.value == 1


def test_trigger_copies_state():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.callbacks.append(dst.trigger)
    src.succeed("payload")
    env.run()
    assert dst.triggered and dst.ok
    assert dst.value == "payload"


def test_trigger_on_already_triggered_is_noop():
    env = Environment()
    src = env.event()
    dst = env.event()
    dst.succeed("original")
    src.callbacks.append(dst.trigger)
    src.succeed("other")
    env.run()
    assert dst.value == "original"


def test_yield_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    env.run()  # process the event fully
    assert ev.processed

    def waiter(env):
        v = yield ev
        return v

    w = env.process(waiter(env))
    env.run()
    assert w.value == "early"


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed(13)
    env.run()
    assert env.run(until=ev) == 13


def test_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(AttributeError):
        _ = ev.value
    assert ev.exception is None


def test_failed_event_exception_property():
    env = Environment()
    ev = env.event()
    exc = RuntimeError("x")
    ev.fail(exc)
    ev.defused = True
    env.run()
    assert ev.exception is exc
    assert not ev.ok


def test_undefused_failure_surfaces_at_loop():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_interrupt_while_waiting_on_resource():
    from repro.sim import Interrupt, Resource

    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(100)

    def impatient(env):
        req = res.request()
        try:
            yield req
        except Interrupt:
            req.cancel()
            log.append(("gave up", env.now))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt()

    env.process(holder(env))
    victim = env.process(impatient(env))
    env.process(interrupter(env, victim))
    env.run(until=10)
    assert log == [("gave up", 2)]
    assert len(res.queue) == 0  # the cancelled request left the queue


def test_nested_process_failure_chain():
    env = Environment()

    def level2(env):
        yield env.timeout(1)
        raise KeyError("deep")

    def level1(env):
        yield env.process(level2(env))

    def level0(env):
        try:
            yield env.process(level1(env))
        except KeyError as exc:
            return f"surfaced {exc}"

    p = env.process(level0(env))
    env.run()
    assert p.value == "surfaced 'deep'"


def test_schedule_in_past_rejected():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.schedule(ev, delay=-1)
