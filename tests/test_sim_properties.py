"""Property-based tests for the DES kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=50))
@settings(max_examples=100)
def test_time_is_monotone_nondecreasing(delays):
    """Processing order never runs the clock backwards."""
    env = Environment()
    observed = []

    def proc(env, d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(delays=st.lists(st.integers(min_value=0, max_value=100),
                       min_size=1, max_size=30))
@settings(max_examples=50)
def test_identical_runs_produce_identical_traces(delays):
    """Bit-for-bit determinism: two runs of the same model match."""

    def run_once():
        env = Environment()
        trace = []

        def proc(env, idx, d):
            yield env.timeout(d)
            trace.append((env.now, idx))
            yield env.timeout(d % 7)
            trace.append((env.now, idx, "again"))

        for i, d in enumerate(delays):
            env.process(proc(env, i, d))
        env.run()
        return trace

    assert run_once() == run_once()


@given(
    capacity=st.integers(min_value=1, max_value=8),
    holds=st.lists(st.integers(min_value=1, max_value=20),
                   min_size=1, max_size=40),
)
@settings(max_examples=50)
def test_resource_never_oversubscribed(capacity, holds):
    """At no instant do more than ``capacity`` processes hold the resource."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    active = [0]
    max_active = [0]
    completions = [0]

    def user(env, hold):
        with res.request() as req:
            yield req
            active[0] += 1
            max_active[0] = max(max_active[0], active[0])
            yield env.timeout(hold)
            active[0] -= 1
        completions[0] += 1

    for h in holds:
        env.process(user(env, h))
    env.run()
    assert max_active[0] <= capacity
    assert completions[0] == len(holds)  # nobody starves
    assert active[0] == 0


@given(items=st.lists(st.integers(), min_size=0, max_size=50))
@settings(max_examples=50)
def test_store_conserves_and_orders_items(items):
    """Everything put into a Store comes out exactly once, in FIFO order."""
    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        for item in items:
            yield store.put(item)
            yield env.timeout(1)

    def consumer(env):
        for _ in items:
            got = yield store.get()
            out.append(got)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == items


@given(
    n_users=st.integers(min_value=1, max_value=20),
    hold=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30)
def test_single_server_serializes_work(n_users, hold):
    """With capacity 1, total elapsed time equals the sum of holds."""
    env = Environment()
    res = Resource(env, capacity=1)
    done = []

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(hold)
        done.append(env.now)

    for _ in range(n_users):
        env.process(user(env))
    env.run()
    assert done[-1] == n_users * hold
