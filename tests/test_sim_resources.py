"""Unit tests for simulation resources (Resource, Store, Container)."""

import pytest

from repro.sim import (
    Container,
    Environment,
    FilterStore,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


# ---------------------------------------------------------------- Resource


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def user(env, name, hold):
        with res.request() as req:
            yield req
            log.append((env.now, name, "got"))
            yield env.timeout(hold)
        log.append((env.now, name, "rel"))

    env.process(user(env, "a", 5))
    env.process(user(env, "b", 5))
    env.process(user(env, "c", 5))
    env.run()
    got = [(t, n) for (t, n, what) in log if what == "got"]
    assert got == [(0, "a"), (0, "b"), (5, "c")]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, name):
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    for name in "abcd":
        env.process(user(env, name))
    env.run()
    assert order == list("abcd")


def test_resource_count_and_queue():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def observer(env):
        yield env.timeout(1)
        assert res.count == 1
        r2 = res.request()
        assert len(res.queue) == 1
        r2.cancel()
        assert len(res.queue) == 0

    env.process(holder(env))
    env.process(observer(env))
    env.run()


def test_resource_bad_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_release_unheld_request_is_error():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc(env):
        req = res.request()
        yield req
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    env.process(proc(env))
    env.run()


def test_cancelled_request_not_granted():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def canceller(env):
        yield env.timeout(1)
        req = res.request()
        req.cancel()
        yield env.timeout(10)
        granted.append(req.triggered)

    env.process(holder(env))
    env.process(canceller(env))
    env.run()
    assert granted == [False]


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def user(env, name, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder(env))
    env.process(user(env, "low", 10, 1))
    env.process(user(env, "high", 1, 2))
    env.process(user(env, "mid", 5, 3))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_resource_fifo_within_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def user(env, name, delay):
        yield env.timeout(delay)
        with res.request(priority=3) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder(env))
    env.process(user(env, "first", 1))
    env.process(user(env, "second", 2))
    env.run()
    assert order == ["first", "second"]


# ---------------------------------------------------------------- Container


def test_container_put_get():
    env = Environment()
    box = Container(env, capacity=10, init=5)
    results = []

    def proc(env):
        yield box.get(3)
        results.append(box.level)
        yield box.put(8)
        results.append(box.level)

    env.process(proc(env))
    env.run()
    assert results == [2, 10]


def test_container_get_blocks_until_available():
    env = Environment()
    box = Container(env, capacity=10, init=0)
    times = []

    def getter(env):
        yield box.get(4)
        times.append(env.now)

    def putter(env):
        yield env.timeout(3)
        yield box.put(4)

    env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert times == [3]


def test_container_put_blocks_when_full():
    env = Environment()
    box = Container(env, capacity=5, init=5)
    times = []

    def putter(env):
        yield box.put(2)
        times.append(env.now)

    def getter(env):
        yield env.timeout(7)
        yield box.get(3)

    env.process(putter(env))
    env.process(getter(env))
    env.run()
    assert times == [7]


def test_container_invalid_args():
    env = Environment()
    with pytest.raises(SimulationError):
        Container(env, capacity=0)
    with pytest.raises(SimulationError):
        Container(env, capacity=5, init=9)
    box = Container(env, capacity=5)
    with pytest.raises(SimulationError):
        box.get(0)
    with pytest.raises(SimulationError):
        box.put(-1)


# ---------------------------------------------------------------- Store


def test_store_fifo():
    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        for item in "abc":
            yield store.put(item)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            out.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert [i for _, i in out] == ["a", "b", "c"]


def test_store_get_blocks_on_empty():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        yield store.get()
        times.append(env.now)

    def producer(env):
        yield env.timeout(4)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [4]


def test_store_put_blocks_on_full():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put(1)
        yield store.put(2)
        times.append(env.now)

    def consumer(env):
        yield env.timeout(6)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [6]


def test_store_len():
    env = Environment()
    store = Store(env)

    def proc(env):
        yield store.put("a")
        yield store.put("b")

    env.process(proc(env))
    env.run()
    assert len(store) == 2


def test_filter_store_selects_matching():
    env = Environment()
    store = FilterStore(env)
    out = []

    def producer(env):
        for item in [1, 2, 3, 4]:
            yield store.put(item)

    def consumer(env):
        even = yield store.get(lambda x: x % 2 == 0)
        out.append(even)
        any_item = yield store.get()
        out.append(any_item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == [2, 1]


def test_filter_store_waits_for_match():
    env = Environment()
    store = FilterStore(env)
    out = []

    def consumer(env):
        item = yield store.get(lambda x: x == "wanted")
        out.append((env.now, item))

    def producer(env):
        yield store.put("other")
        yield env.timeout(5)
        yield store.put("wanted")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert out == [(5, "wanted")]
    assert list(store.items) == ["other"]


def test_filter_store_later_getter_can_match_first():
    env = Environment()
    store = FilterStore(env)
    out = []

    def consumer(env, name, pred):
        item = yield store.get(pred)
        out.append((name, item))

    env.process(consumer(env, "picky", lambda x: x > 10))
    env.process(consumer(env, "easy", lambda x: True))

    def producer(env):
        yield env.timeout(1)
        yield store.put(5)

    env.process(producer(env))
    env.run(until=10)
    assert out == [("easy", 5)]
