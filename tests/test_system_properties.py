"""System-level property tests (hypothesis): conservation and ordering
invariants that must hold for arbitrary workloads and fault patterns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DocephProfile
from repro.core import (
    CommChannel,
    DocaDma,
    DmaPipeline,
    FallbackController,
    PROBE_BYTES,
    RpcChannel,
)
from repro.hw import (
    ClusterNode,
    CpuComplex,
    DmaEngine,
    Network,
    SimThread,
    SsdDevice,
)
from repro.msgr import AsyncMessenger, MOSDOp, MsgrDirectory, OpType
from repro.osd import CLIENT_OP, RECOVERY_OP, SUB_OP, WeightedPriorityQueue
from repro.sim import Environment
from repro.util import DataBlob

from tests.helpers import make_stack

MB = 1 << 20


# ------------------------------------------------------------- messenger


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=8 * MB),
                   min_size=1, max_size=25)
)
@settings(max_examples=25, deadline=None)
def test_messenger_delivers_every_message_once_in_order(sizes):
    env = Environment()
    net = Network(env, latency_s=10e-6)
    directory = MsgrDirectory()
    a = AsyncMessenger(make_stack(env, net, "a"), "a", directory)
    b = AsyncMessenger(make_stack(env, net, "b"), "b", directory)
    got = []

    class Sink:
        def ms_dispatch(self, msg, conn):
            got.append((msg.tid, msg.data_len))
            release = getattr(msg, "throttle_release", None)
            if release:
                release()
            if False:
                yield

    b.register_dispatcher(Sink())
    for i, size in enumerate(sizes):
        data = DataBlob(size) if size else None
        a.send_message(
            MOSDOp(tid=i, pool="p", object_name=f"o{i}", op=OpType.WRITE,
                   length=size, data=data),
            "b",
        )
    env.run(until=60.0)
    assert got == [(i, s) for i, s in enumerate(sizes)]
    assert a.messages_sent == len(sizes)
    assert b.messages_received == len(sizes)
    assert a.bytes_sent == b.bytes_received


# ------------------------------------------------------------- op queue


@given(
    ops=st.lists(
        st.tuples(st.sampled_from([CLIENT_OP, SUB_OP, RECOVERY_OP]),
                  st.integers(min_value=0, max_value=1000)),
        min_size=1, max_size=100,
    ),
    seed=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_wpq_conserves_items(ops, seed):
    env = Environment()
    q = WeightedPriorityQueue(env, seed=seed)
    for prio, payload in ops:
        q.enqueue(payload, prio)
    out = []

    def consumer():
        for _ in ops:
            item = yield q.dequeue()
            out.append(item)

    p = env.process(consumer())
    env.run(until=p)
    assert sorted(out) == sorted(payload for _, payload in ops)
    assert len(q) == 0
    assert q.dequeued == len(ops)


# ------------------------------------------------------------- pipeline


def _make_pipeline(env, fail_mask):
    """Pipeline whose k-th DMA attempt fails iff fail_mask[k] (cyclic)."""
    profile = DocephProfile(cooldown_seconds=0.05)
    network = Network(env)
    host_cpu = CpuComplex(env, "n.host", cores=8)
    dpu_cpu = CpuComplex(env, "n.dpu", cores=8, perf=0.45)
    node = ClusterNode(
        env, network, "n", host_cpu, SsdDevice(env, "n.ssd"),
        nic_bandwidth=100e9, tcp=profile.tcp, dpu_cpu=dpu_cpu,
        dma=DmaEngine(env, "n.dma", bandwidth=2e9, setup_latency=1e-4),
    )
    counter = [0]

    def hook(n):
        k = counter[0]
        counter[0] += 1
        return bool(fail_mask) and fail_mask[k % len(fail_mask)]

    node.dma.fault_hook = hook
    rpc = RpcChannel(node, profile)

    def bulk_handler(req, t):
        req.reply = {"ok": True}
        if False:
            yield

    rpc.register_handler("bulk", bulk_handler)
    fb = FallbackController(cooldown_seconds=0.05)
    pipe = DmaPipeline(
        env,
        DocaDma(node, CommChannel(node, 1e-4)),
        rpc, fb,
        stage_thread=SimThread(dpu_cpu, "stage", "proxy"),
        memcpy_bandwidth=3e9,
        segment_bytes=2 * MB,
        n_buffers=4,
    )
    return node, pipe, SimThread(dpu_cpu, "caller", "proxy")


@given(
    total=st.integers(min_value=1, max_value=24 * MB),
    fail_mask=st.lists(st.booleans(), min_size=0, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_pipeline_conserves_bytes_under_any_fault_pattern(total, fail_mask):
    """DMA bytes + fallback bytes always cover the full request, for any
    size and any pattern of injected transfer failures."""
    env = Environment()
    node, pipe, thread = _make_pipeline(env, fail_mask)

    def work():
        timing = yield from pipe.push(total, thread)
        return timing

    p = env.process(work())
    env.run(until=p)
    timing = p.value
    # Everything arrived, via DMA or the fallback socket.  Successful
    # probe transfers may add DMA traffic beyond the payload — in exact
    # multiples of PROBE_BYTES.
    covered = timing.fallback_bytes + node.dma.bytes_transferred
    slack = covered - total
    assert slack >= 0
    assert slack % PROBE_BYTES == 0
    # decomposition invariants
    assert timing.dma_time >= 0
    assert timing.dma_wait >= 0
    assert timing.dma_time + timing.dma_wait <= timing.total + 1e-9


@given(total=st.integers(min_value=1, max_value=16 * MB))
@settings(max_examples=30, deadline=None)
def test_pipeline_faultfree_breakdown_invariants(total):
    env = Environment()
    node, pipe, thread = _make_pipeline(env, [])

    def work():
        timing = yield from pipe.push(total, thread)
        return timing

    p = env.process(work())
    env.run(until=p)
    timing = p.value
    assert node.dma.bytes_transferred == total
    assert timing.fallback_bytes == 0
    assert timing.segments == -(-total // (2 * MB))
    assert timing.dma_time > 0
    assert timing.dma_time + timing.dma_wait <= timing.total + 1e-9
