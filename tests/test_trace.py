"""Tests for repro.trace: determinism, zero perturbation, span-tree
well-formedness, CPU cross-checks, exporters, and fault annotations.

Seeded tests honour ``REPRO_FAULT_SEED`` (CI runs a small seed matrix);
every assertion must hold for any seed.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import run_rados_bench
from repro.chaos import run_chaos
from repro.cluster import (
    BENCH_POOL,
    build_baseline_cluster,
    build_doceph_cluster,
)
from repro.faults import FaultPlan
from repro.sim import Environment
from repro.trace import EPS, Tracer, simulation_digest

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def traced_bench(mode="doceph", *, seed=0, size=1 << 20, clients=2,
                 duration=1.5, warmup=0.5, faults=None):
    """One short bench run with a tracer attached."""
    env = Environment()
    tracer = Tracer(seed=seed)
    build = (build_doceph_cluster if mode == "doceph"
             else build_baseline_cluster)
    plan = FaultPlan.parse(faults, seed=seed) if faults else None
    cluster = build(env, fault_plan=plan, tracer=tracer)
    result = run_rados_bench(
        cluster, size, clients=clients, duration=duration, warmup=warmup
    )
    return env, result


# ---------------------------------------------------------------- unit


def test_tracer_ids_deterministic():
    a, b = Tracer(seed=3), Tracer(seed=3)
    assert [a._mint_id() for _ in range(20)] == [
        b._mint_id() for _ in range(20)
    ]
    # distinct seeds diverge
    assert Tracer(seed=4)._mint_id() != Tracer(seed=3)._mint_id()


def test_span_tree_basics():
    tracer = Tracer()
    root = tracer.start_span("root", 0.0, cpu="n0.host", category="c",
                             thread_name="t")
    child = root.child("child", 1.0, cpu="n0.host", category="c",
                       thread_name="t", nbytes=42)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    child.event(1.5, "midpoint")
    child.finish(2.0)
    root.finish(3.0)
    assert child.duration == pytest.approx(1.0)
    assert root.duration == pytest.approx(3.0)
    # finish is idempotent: an error end is not overwritten
    other = tracer.start_span("x", 0.0)
    other.error(1.0, "boom")
    other.finish(5.0)
    assert other.end == 1.0 and other.status == "error"
    assert other.tags["error"] == "boom"


def test_critical_path_hand_built():
    tracer = Tracer()
    root = tracer.start_span("op", 0.0)
    a = root.child("a", 0.0)
    a.finish(4.0)
    b = root.child("b", 4.0)
    b.finish(9.0)
    root.finish(10.0)
    report = tracer.report()
    steps = report.critical_path(root)
    names = [(s.span.name, s.t0, s.t1) for s in steps]
    # a covers (0,4], b covers (4,9], root keeps the (9,10] remainder
    assert ("a", 0.0, 4.0) in names
    assert ("b", 4.0, 9.0) in names
    assert ("op", 9.0, 10.0) in names
    assert sum(s.self_time for s in steps) == pytest.approx(10.0)


# ---------------------------------------------------------------- determinism


def test_trace_fingerprint_deterministic():
    _, r1 = traced_bench("doceph", seed=SEED)
    _, r2 = traced_bench("doceph", seed=SEED)
    assert r1.trace.fingerprint() == r2.trace.fingerprint()
    assert len(r1.trace.spans) == len(r2.trace.spans) > 0
    # a different tracer seed re-mints every id → different fingerprint
    _, r3 = traced_bench("doceph", seed=SEED + 1)
    assert r3.trace.fingerprint() != r1.trace.fingerprint()


def test_zero_perturbation_tracer_off_vs_on():
    """The tracer must only observe: identical event sequence, clock,
    op count and latencies whether attached or not."""
    env_off = Environment()
    off = run_rados_bench(
        build_doceph_cluster(env_off), 1 << 20, clients=2,
        duration=1.5, warmup=0.5,
    )
    env_on, on = traced_bench("doceph", seed=SEED)
    assert simulation_digest(env_off) == simulation_digest(env_on)
    assert off.completed_ops == on.completed_ops
    assert off.latencies == on.latencies
    assert off.trace is None and on.trace is not None


# ---------------------------------------------------------------- structure


def _assert_well_formed(report, allow_drops=False):
    by_id = {s.span_id: s for s in report.spans}
    for trace_id, members in report.traces().items():
        roots = [s for s in members if s.parent_id is None]
        assert len(roots) == 1, f"trace {trace_id:x}: {len(roots)} roots"
        for span in members:
            if span.end is not None:
                assert span.end >= span.begin - EPS
            for t, _name in span.events:
                assert t >= span.begin - EPS
                if span.end is not None:
                    assert t <= span.end + EPS
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.trace_id == span.trace_id
                # children are time-nested within their parents
                assert span.begin >= parent.begin - EPS
                if span.end is not None and parent.end is not None:
                    assert span.end <= parent.end + EPS, (
                        f"{span!r} escapes {parent!r}"
                    )
    # every send span is consumed by exactly one recv (via its
    # "follows" link) unless it was dropped or still on the wire
    recv_targets = [
        other_id
        for s in report.find("msgr.recv")
        for other_id, kind in s.links
        if kind == "follows"
    ]
    assert len(recv_targets) == len(set(recv_targets))
    consumed = set(recv_targets)
    for send in report.find("msgr.send"):
        if send.span_id in consumed:
            continue
        dropped = "dropped" in send.tags or send.status == "error"
        in_flight = send.end is None
        assert dropped or in_flight or allow_drops, (
            f"unmatched send span {send!r}"
        )
        if not allow_drops:
            assert dropped is False or "dropped" in send.tags


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    mode=st.sampled_from(["baseline", "doceph"]),
    size=st.sampled_from([256 << 10, 1 << 20]),
)
def test_span_trees_well_formed(seed, mode, size):
    _, result = traced_bench(mode, seed=seed, size=size, duration=1.0)
    report = result.trace
    assert report.roots()
    assert all(s.name.startswith("client.") for s in report.roots())
    _assert_well_formed(report)


# ---------------------------------------------------------------- CPU


@pytest.mark.parametrize("mode", ["baseline", "doceph"])
def test_cpu_crosscheck_within_5_percent(mode):
    """Span-time attribution must agree with CpuSampler busy accounting
    within 5 % per category (the acceptance criterion)."""
    _, result = traced_bench(mode, seed=SEED, duration=2.0)
    crosscheck = result.trace.cpu_crosscheck(
        result.ceph_cpu + result.host_cpu
    )
    assert crosscheck, "no categories to compare"
    for category, (traced, sampled) in crosscheck.items():
        if sampled < 1e-9:
            continue
        assert abs(traced - sampled) / sampled <= 0.05, (
            f"{category}: traced {traced} vs sampled {sampled}"
        )


# ---------------------------------------------------------------- exporters


def test_perfetto_export_shape():
    _, result = traced_bench("doceph", seed=SEED)
    report = result.trace
    doc = report.to_perfetto()
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == len(report.spans)
    for ev in complete:
        assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert ev["pid"] >= 1 and ev["tid"] >= 1
    meta = [e for e in events if e["ph"] == "M"]
    node_names = {e["args"]["name"] for e in meta
                  if e["name"] == "process_name"}
    assert {"client", "node0", "node1"} <= node_names
    flows_s = [e for e in events if e["ph"] == "s"]
    flows_f = [e for e in events if e["ph"] == "f"]
    assert len(flows_s) == len(flows_f) > 0
    assert {e["id"] for e in flows_s} == {e["id"] for e in flows_f}


def test_flame_summary_and_as_dict():
    _, result = traced_bench("doceph", seed=SEED)
    report = result.trace
    text = report.flame_summary()
    for name in ("client.WRITE", "msgr.send", "dma.segment",
                 "bstore.commit"):
        assert name in text
    doc = report.as_dict()
    assert doc["spans"] == len(report.spans)
    assert doc["fingerprint"] == report.fingerprint()
    assert doc["errors"] == 0
    assert "msgr-worker" in doc["cpu_by_category_s"]


def test_critical_path_covers_full_latency():
    """The extracted chain must account for the whole client-observed
    latency of the op — no causal gaps."""
    _, result = traced_bench("doceph", seed=SEED)
    report = result.trace
    for root in report.roots()[:10]:
        if root.end is None:
            continue
        steps = report.critical_path(root)
        covered = sum(s.self_time for s in steps)
        assert covered == pytest.approx(root.duration, rel=1e-6)
        # path spans both sides of the offload: client and storage nodes
        nodes = {s.span.node for s in steps}
        assert "client" in nodes
        assert any(n.startswith("node") for n in nodes)


# ---------------------------------------------------------------- OpTracker


def test_optracker_stage_marks_folded_into_spans():
    """The OpTracker stage marks and the osd.op span events are the same
    facility — they cannot drift."""
    env = Environment()
    tracer = Tracer(seed=SEED)
    cluster = build_baseline_cluster(env, tracer=tracer)
    boot = env.process(cluster.boot())
    env.run(until=boot)
    trackers = [osd.enable_op_tracking() for osd in cluster.osds]

    def work():
        for i in range(3):
            yield from cluster.client.write_object(
                BENCH_POOL, f"fold-{i}", 1 << 20
            )

    p = env.process(work())
    env.run(until=p)

    op_spans = [s for s in tracer.spans if s.name == "osd.op"]
    tracked = [op for t in trackers for op in t.dump_historic()]
    assert len(op_spans) == len(tracked) == 3
    span_marks = sorted(
        tuple(ev) for s in op_spans for ev in s.events
    )
    tracker_marks = sorted(
        (t, stage) for op in tracked for t, stage in op.events
        if stage != "initiated"
    )
    assert span_marks == tracker_marks
    for s in op_spans:
        stages = [name for _, name in s.events]
        assert "queued_for_pg" in stages
        assert "commit_received" in stages


# ---------------------------------------------------------------- faults


def test_dma_fault_fallback_annotated_spans():
    """A DMA fault's fallback-to-RPC reroute shows up as an error
    dma.segment span plus a dma.fallback span retry-linked to it."""
    _, result = traced_bench("doceph", seed=SEED, faults="dma,p=1")
    report = result.trace
    by_id = {s.span_id: s for s in report.spans}

    failed = [s for s in report.find("dma.segment")
              if s.status == "error"]
    assert failed, "no failed DMA segment spans"
    assert all(s.tags.get("error") == "dma-error" for s in failed)

    fallbacks = report.find("dma.fallback")
    assert fallbacks, "no fallback spans"
    retried = [s for s in fallbacks
               if any(kind == "retry" for _, kind in s.links)]
    assert retried, "no fallback span carries a retry link"
    for fb in retried:
        for other_id, kind in fb.links:
            if kind != "retry":
                continue
            target = by_id[other_id]
            assert target.name == "dma.segment"
            assert target.status == "error"
        assert fb.tags.get("reason") == "dma-error"
    # cooldown reroutes skip DMA entirely and say so
    assert any(s.tags.get("reason") == "cooldown" for s in fallbacks)
    # the rerouted bytes travel as rpc.bulk calls under the fallback span
    bulk = report.find("rpc.bulk")
    assert bulk
    assert all(s.parent is not None and s.parent.name == "dma.fallback"
               for s in bulk)
    # determinism holds under fault injection too
    _, replay = traced_bench("doceph", seed=SEED, faults="dma,p=1")
    assert replay.trace.fingerprint() == report.fingerprint()


def test_osd_crash_resend_annotated_spans():
    """An OSD crash surfaces as error/dropped spans and the client's
    resend as a retry-linked client.attempt span, consistent with the
    health counters."""
    tracer = Tracer(seed=SEED)
    report_chaos = run_chaos(
        mode="baseline", seed=SEED, duration=4.0, clients=2,
        object_size=1 << 20, crashes=2, partitions=0, tracer=tracer,
    )
    assert report_chaos.incidents
    report = tracer.report()
    _assert_well_formed(report, allow_drops=True)

    attempts = report.find("client.attempt")
    retries = [s for s in attempts
               if any(kind == "retry" for _, kind in s.links)]
    health = report_chaos.health["client"]
    if health["resends"] > 0:
        assert retries, "resends happened but no retry-linked attempts"
        by_id = {s.span_id: s for s in report.spans}
        for attempt in retries:
            for other_id, kind in attempt.links:
                if kind == "retry":
                    prev = by_id[other_id]
                    assert prev.name == "client.attempt"
                    # the superseded attempt ended in error (timeout)
                    assert prev.status == "error"
    # a crash mid-traffic leaves annotated evidence: dropped sends,
    # crashed-op error spans, or timed-out attempts
    evidence = [
        s for s in report.spans
        if s.status == "error" or "dropped" in s.tags
    ]
    if health["resends"] > 0 or health["timeouts"] > 0:
        assert evidence
