"""Tests for the Ceph-style bufferlist encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import BufferList, DataBlob, EncodeError


def test_primitive_roundtrip():
    bl = BufferList()
    bl.encode_u8(7)
    bl.encode_u16(65535)
    bl.encode_u32(4_000_000_000)
    bl.encode_u64(2**63)
    bl.encode_s64(-12345)
    bl.encode_f64(3.5)
    bl.encode_bool(True)
    bl.encode_bytes(b"hello")
    bl.encode_str("wörld")

    d = bl.decoder()
    assert d.decode_u8() == 7
    assert d.decode_u16() == 65535
    assert d.decode_u32() == 4_000_000_000
    assert d.decode_u64() == 2**63
    assert d.decode_s64() == -12345
    assert d.decode_f64() == 3.5
    assert d.decode_bool() is True
    assert d.decode_bytes() == b"hello"
    assert d.decode_str() == "wörld"


def test_length_counts_real_and_virtual():
    bl = BufferList()
    bl.encode_u32(1)
    bl.append_blob(DataBlob(1_000_000))
    bl.encode_u32(2)
    assert len(bl) == 4 + 1_000_000 + 4
    assert bl.real_length == 8
    assert bl.virtual_length == 1_000_000


def test_blob_roundtrip_preserves_identity():
    blob = DataBlob(4096)
    bl = BufferList()
    bl.encode_str("header")
    bl.append_blob(blob)

    d = bl.decoder()
    assert d.decode_str() == "header"
    out = d.decode_blob()
    assert out == blob
    assert out.root_id == blob.blob_id


def test_decode_primitive_from_blob_is_error():
    bl = BufferList()
    bl.append_blob(DataBlob(100))
    with pytest.raises(EncodeError):
        bl.decoder().decode_u32()


def test_decode_blob_where_bytes_is_error():
    bl = BufferList()
    bl.encode_u32(5)
    with pytest.raises(EncodeError):
        bl.decoder().decode_blob()


def test_decode_past_end_is_error():
    bl = BufferList()
    bl.encode_u8(1)
    d = bl.decoder()
    d.decode_u8()
    with pytest.raises(EncodeError):
        d.decode_u8()
    with pytest.raises(EncodeError):
        d.decode_blob()


def test_blob_slice_bounds():
    blob = DataBlob(2048)
    s = blob.slice(1024, 512)
    assert s.length == 512
    assert s.offset == 1024
    assert s.root_id == blob.blob_id
    with pytest.raises(EncodeError):
        blob.slice(1024, 2000)
    with pytest.raises(EncodeError):
        blob.slice(-1, 10)


def test_blob_slice_of_slice_tracks_root():
    blob = DataBlob(100)
    s1 = blob.slice(10, 80)
    s2 = s1.slice(5, 20)
    assert s2.root_id == blob.blob_id
    assert s2.offset == 15
    assert s2.length == 20


def test_negative_blob_length_rejected():
    with pytest.raises(EncodeError):
        DataBlob(-1)


def test_append_bufferlist_splices():
    a = BufferList()
    a.encode_u32(1)
    b = BufferList()
    b.encode_u32(2)
    b.append_blob(DataBlob(64))
    a.append_bufferlist(b)
    d = a.decoder()
    assert d.decode_u32() == 1
    assert d.decode_u32() == 2
    assert d.decode_blob().length == 64


def test_crc32_differs_on_content_change():
    a = BufferList()
    a.encode_str("x")
    b = BufferList()
    b.encode_str("y")
    assert a.crc32() != b.crc32()


def test_crc32_distinguishes_blob_identity():
    a = BufferList()
    a.append_blob(DataBlob(128))
    b = BufferList()
    b.append_blob(DataBlob(128))
    assert a.crc32() != b.crc32()  # different logical data


def test_remaining_extents_after_partial_decode():
    bl = BufferList()
    bl.encode_u32(1)
    bl.encode_u32(2)
    blob = DataBlob(99)
    bl.append_blob(blob)
    d = bl.decoder()
    d.decode_u32()
    rest = list(d.remaining_extents())
    assert rest[0] == (2).to_bytes(4, "little")
    assert rest[1] == blob


# --------------------------------------------------------------- properties


@given(
    values=st.lists(
        st.tuples(
            st.sampled_from(["u8", "u16", "u32", "u64", "s64", "bytes", "str"]),
            st.integers(min_value=0, max_value=255),
        ),
        max_size=50,
    )
)
@settings(max_examples=100)
def test_roundtrip_property(values):
    """Any encode sequence decodes back to the same values."""
    bl = BufferList()
    expected = []
    for kind, v in values:
        if kind == "u8":
            bl.encode_u8(v)
            expected.append(("u8", v))
        elif kind == "u16":
            bl.encode_u16(v * 257 % 65536)
            expected.append(("u16", v * 257 % 65536))
        elif kind == "u32":
            bl.encode_u32(v * 16_843_009)
            expected.append(("u32", v * 16_843_009))
        elif kind == "u64":
            bl.encode_u64(v * 72_340_172_838_076_673)
            expected.append(("u64", v * 72_340_172_838_076_673))
        elif kind == "s64":
            bl.encode_s64(v - 128)
            expected.append(("s64", v - 128))
        elif kind == "bytes":
            data = bytes([v]) * (v % 17)
            bl.encode_bytes(data)
            expected.append(("bytes", data))
        else:
            s = chr(48 + v % 64) * (v % 9)
            bl.encode_str(s)
            expected.append(("str", s))

    d = bl.decoder()
    for kind, v in expected:
        got = getattr(d, f"decode_{kind}")()
        assert got == v


@given(
    total=st.integers(min_value=1, max_value=1 << 24),
    cuts=st.lists(st.floats(min_value=0, max_value=1, exclude_max=True),
                  min_size=0, max_size=10),
)
@settings(max_examples=100)
def test_blob_slicing_partitions_cover_exactly(total, cuts):
    """Slicing a blob at arbitrary cut points conserves total length and
    the offsets tile the original extent."""
    blob = DataBlob(total)
    points = sorted({int(c * total) for c in cuts} | {0, total})
    pieces = [
        blob.slice(a, b - a) for a, b in zip(points, points[1:]) if b > a
    ]
    assert sum(p.length for p in pieces) == total
    # offsets tile [0, total)
    pos = 0
    for p in pieces:
        assert p.offset == pos
        assert p.root_id == blob.blob_id
        pos += p.length
    assert pos == total
