"""Tests for rjenkins hashes, stats accumulators, and RNG streams."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    Histogram,
    RunningStats,
    SeededRng,
    TimeSeries,
    ceph_str_hash_rjenkins,
    crush_hash32,
    crush_hash32_2,
    crush_hash32_3,
    crush_hash32_4,
    percentile,
)


# ---------------------------------------------------------------- rjenkins


def test_hash_outputs_are_32bit():
    for h in (
        crush_hash32(12345),
        crush_hash32_2(1, 2),
        crush_hash32_3(1, 2, 3),
        crush_hash32_4(1, 2, 3, 4),
        ceph_str_hash_rjenkins("object-name"),
    ):
        assert 0 <= h <= 0xFFFFFFFF


def test_hash_deterministic():
    assert crush_hash32_3(7, 8, 9) == crush_hash32_3(7, 8, 9)
    assert ceph_str_hash_rjenkins("abc") == ceph_str_hash_rjenkins(b"abc")


def test_hash_sensitive_to_inputs():
    assert crush_hash32_2(1, 2) != crush_hash32_2(2, 1)
    assert crush_hash32_3(1, 2, 3) != crush_hash32_3(1, 2, 4)
    assert ceph_str_hash_rjenkins("a") != ceph_str_hash_rjenkins("b")


def test_str_hash_handles_all_tail_lengths():
    """The 12-byte block loop plus every tail-switch arm."""
    seen = set()
    for n in range(0, 26):
        h = ceph_str_hash_rjenkins("x" * n)
        assert 0 <= h <= 0xFFFFFFFF
        seen.add(h)
    # All lengths should hash differently (no systematic collisions).
    assert len(seen) == 26


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=200)
def test_crush_hash_masks_to_32bit(x):
    assert 0 <= crush_hash32(x) <= 0xFFFFFFFF
    assert crush_hash32(x) == crush_hash32(x + 2**32)  # masking


def test_hash_distribution_is_roughly_uniform():
    """Bucketing 40k object names into 16 bins: each within 20% of mean."""
    bins = [0] * 16
    for i in range(40_000):
        bins[ceph_str_hash_rjenkins(f"obj-{i}") % 16] += 1
    mean = sum(bins) / len(bins)
    for b in bins:
        assert abs(b - mean) / mean < 0.2


# ---------------------------------------------------------------- stats


def test_running_stats_basic():
    s = RunningStats()
    for v in [2.0, 4.0, 6.0]:
        s.add(v)
    assert s.count == 3
    assert s.mean == pytest.approx(4.0)
    assert s.total == pytest.approx(12.0)
    assert s.min == 2.0
    assert s.max == 6.0
    assert s.variance == pytest.approx(4.0)


def test_running_stats_empty():
    s = RunningStats()
    assert s.mean == 0.0
    assert s.variance == 0.0


def test_running_stats_merge_matches_bulk():
    rng = random.Random(7)
    values = [rng.gauss(10, 3) for _ in range(500)]
    bulk = RunningStats()
    for v in values:
        bulk.add(v)
    a, b = RunningStats(), RunningStats()
    for v in values[:137]:
        a.add(v)
    for v in values[137:]:
        b.add(v)
    a.merge(b)
    assert a.count == bulk.count
    assert a.mean == pytest.approx(bulk.mean)
    assert a.variance == pytest.approx(bulk.variance)
    assert a.min == bulk.min and a.max == bulk.max


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=2, max_size=200))
@settings(max_examples=100)
def test_running_stats_matches_naive(values):
    s = RunningStats()
    for v in values:
        s.add(v)
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    assert s.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
    assert s.variance == pytest.approx(var, rel=1e-6, abs=1e-6)


def test_percentile_interpolation():
    data = [1.0, 2.0, 3.0, 4.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 100) == 4.0
    assert percentile(data, 50) == pytest.approx(2.5)


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_histogram_buckets_and_percentiles():
    h = Histogram([1.0, 10.0, 100.0])
    for v in [0.5, 5.0, 50.0, 500.0]:
        h.add(v)
    assert h.counts == [1, 1, 1, 1]
    assert h.count == 4
    assert h.percentile(50) == pytest.approx(27.5)


def test_histogram_boundary_value_stays_in_bucket():
    h = Histogram([1.0, 10.0])
    h.add(1.0)
    assert h.counts == [1, 0, 0]


def test_histogram_falls_back_to_buckets_when_capped():
    h = Histogram([1.0, 10.0, 100.0], max_raw=10)
    for i in range(50):
        h.add(float(i))
    # raw values were discarded; percentile still returns a sane estimate
    p = h.percentile(50)
    assert 1.0 <= p <= 100.0


def test_histogram_exponential_factory():
    h = Histogram.exponential(0.001, 2.0, 10)
    assert len(h.boundaries) == 10
    assert h.boundaries[0] == pytest.approx(0.001)
    assert h.boundaries[-1] == pytest.approx(0.001 * 2**9)
    with pytest.raises(ValueError):
        Histogram.exponential(0, 2, 3)


def test_histogram_validation():
    with pytest.raises(ValueError):
        Histogram([])
    with pytest.raises(ValueError):
        Histogram([3.0, 1.0])
    with pytest.raises(ValueError):
        Histogram([1.0]).percentile(50)


def test_timeseries_bucketing():
    ts = TimeSeries(interval=1.0)
    ts.add(0.5, 10)
    ts.add(0.9, 20)
    ts.add(2.1, 5)
    assert ts.sums() == [(0.0, 30.0), (2.0, 5.0)]
    assert ts.counts() == [(0.0, 2), (2.0, 1)]
    assert ts.means()[0] == (0.0, 15.0)


# ---------------------------------------------------------------- rng


def test_rng_streams_are_deterministic():
    a = SeededRng(42).stream("clients").random()
    b = SeededRng(42).stream("clients").random()
    assert a == b


def test_rng_streams_independent_of_creation_order():
    r1 = SeededRng(42)
    r1.stream("x")
    v1 = r1.stream("clients").random()
    r2 = SeededRng(42)
    v2 = r2.stream("clients").random()
    assert v1 == v2


def test_rng_different_names_differ():
    r = SeededRng(42)
    assert r.stream("a").random() != r.stream("b").random()


def test_rng_child_trees():
    c1 = SeededRng(42).child("node0").stream("faults").random()
    c2 = SeededRng(42).child("node0").stream("faults").random()
    c3 = SeededRng(42).child("node1").stream("faults").random()
    assert c1 == c2
    assert c1 != c3
